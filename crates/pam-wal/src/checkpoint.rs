//! Snapshot checkpoints: the map, sorted, on disk.
//!
//! A checkpoint file is named for the last WAL epoch it is guaranteed to
//! contain (`ckpt-<epoch>.ckpt`) and holds the whole map in key order:
//!
//! ```text
//! [ magic "PAMCKPT1" ]
//! [ frame: header  = varint(epoch) ++ varint(entry_count) ]
//! [ frame: chunk   = varint(n) ++ n * (key ++ value) ]      (repeated)
//! ```
//!
//! Every frame is length+CRC checked ([`crate::frame`]), and the file is
//! written to a `.tmp` sibling, fsynced, then atomically renamed — a
//! crash mid-checkpoint leaves at worst a stale temp file, never a
//! half-visible checkpoint. Because the caller streams a *pinned*
//! persistent snapshot, checkpointing runs concurrently with live
//! commits; nothing pauses.
//!
//! [`load_latest`] walks checkpoints newest-first and returns the first
//! one that validates, so a corrupt newest checkpoint degrades to the
//! previous one (plus a longer WAL replay) instead of an unrecoverable
//! store.

use crate::codec::{put_varint, Codec, Reader};
use crate::frame;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 8] = b"PAMCKPT1";

/// Entries per chunk frame: big enough to amortize framing, small enough
/// to keep the write buffer and a corrupt-chunk blast radius modest.
const CHUNK_ENTRIES: usize = 4096;

fn checkpoint_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("ckpt-{epoch:020}.ckpt"))
}

fn parse_checkpoint_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".ckpt")?;
    digits.parse().ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Write a checkpoint claiming WAL epochs `..= epoch`, streaming the
/// `len` pairs that `source` emits (sorted by key, distinct — drive it
/// with `AugMap::for_each`) to disk one chunk at a time. Afterwards
/// prunes old checkpoints, keeping the newest `keep`.
///
/// Returns the bytes written. Fails (leaving only a temp file behind) if
/// `source` does not emit exactly `len` pairs.
///
/// The visitor shape (instead of an iterator) is deliberate: it lets the
/// tree side export with a plain in-order recursion and keeps this crate
/// free of any map dependency.
///
/// # Errors
///
/// `InvalidInput` when `source` emits a different number of pairs than
/// `len` promised; filesystem errors pass through. Either way nothing
/// but a `.tmp` file is left behind — the rename is the commit point.
pub fn write<K, V>(
    dir: &Path,
    epoch: u64,
    len: u64,
    source: impl FnOnce(&mut dyn FnMut(&K, &V)),
    keep: usize,
) -> io::Result<u64>
where
    K: Codec,
    V: Codec,
{
    fs::create_dir_all(dir)?;
    let final_path = checkpoint_path(dir, epoch);
    let tmp_path = final_path.with_extension("tmp");
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)?;

    // The caller is a map, so the entry count is known up front: the
    // header goes first and chunks stream straight to the file — memory
    // use is one chunk, not one checkpoint.
    let mut bytes = 0u64;
    let mut out = Vec::new();
    out.extend_from_slice(CHECKPOINT_MAGIC);
    let mut header = Vec::new();
    put_varint(&mut header, epoch);
    put_varint(&mut header, len);
    frame::put_frame(&mut out, &header);
    file.write_all(&out)?;
    bytes += out.len() as u64;

    fn flush_chunk(file: &mut File, cur: &[u8], in_cur: usize) -> io::Result<u64> {
        let mut payload = Vec::with_capacity(10 + cur.len());
        put_varint(&mut payload, in_cur as u64);
        payload.extend_from_slice(cur);
        let mut buf = Vec::with_capacity(frame::HEADER_LEN + payload.len());
        frame::put_frame(&mut buf, &payload);
        file.write_all(&buf)?;
        Ok(buf.len() as u64)
    }
    let mut cur = Vec::new();
    let mut in_cur = 0usize;
    let mut total = 0u64;
    // io errors inside the visitor are parked here and re-raised after
    // the source returns (a callback cannot `?` outward)
    let mut deferred: io::Result<()> = Ok(());
    source(&mut |k: &K, v: &V| {
        if deferred.is_err() {
            return;
        }
        k.encode(&mut cur);
        v.encode(&mut cur);
        in_cur += 1;
        total += 1;
        if in_cur == CHUNK_ENTRIES {
            match flush_chunk(&mut file, &cur, in_cur) {
                Ok(n) => bytes += n,
                Err(e) => deferred = Err(e),
            }
            cur.clear();
            in_cur = 0;
        }
    });
    deferred?;
    if in_cur > 0 {
        bytes += flush_chunk(&mut file, &cur, in_cur)?;
    }
    if total != len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("checkpoint stream yielded {total} entries, header claims {len}"),
        ));
    }
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;

    prune(dir, keep)?;
    Ok(bytes)
}

/// Delete all but the newest `keep` checkpoints.
fn prune(dir: &Path, keep: usize) -> io::Result<()> {
    let mut ckpts = list(dir)?;
    if ckpts.len() <= keep.max(1) {
        return Ok(());
    }
    // newest last after the sort in `list`
    let stale = ckpts.len() - keep.max(1);
    let mut removed = false;
    for (_, path) in ckpts.drain(..stale) {
        fs::remove_file(path)?;
        removed = true;
    }
    if removed {
        sync_dir(dir)?;
    }
    Ok(())
}

/// All checkpoint files in `dir`, oldest first.
fn list(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out: Vec<(u64, PathBuf)> = fs::read_dir(dir)?
        .filter_map(|e| {
            let p = e.ok()?.path();
            Some((parse_checkpoint_name(&p)?, p))
        })
        .collect();
    out.sort_by_key(|&(e, _)| e);
    Ok(out)
}

/// Stream-decode one checkpoint file: chunks are handed to `sink` as they
/// are read, so peak memory is one chunk, not the whole checkpoint.
/// Errors on any framing/codec/count problem (possibly after `sink` has
/// already consumed earlier chunks — callers discard partial state).
fn load_file_with<K: Codec, V: Codec>(
    path: &Path,
    sink: &mut impl FnMut(Vec<(K, V)>),
) -> io::Result<(u64, u64)> {
    let bad = |msg: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{msg} in checkpoint {}", path.display()),
        )
    };
    let mut file = BufReader::new(File::open(path)?);
    let mut magic = [0u8; CHECKPOINT_MAGIC.len()];
    match file.read_exact(&mut magic) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Err(bad("bad magic")),
        Err(e) => return Err(e),
    }
    if &magic != CHECKPOINT_MAGIC {
        return Err(bad("bad magic"));
    }
    let header = match frame::read_frame_capped(&mut file, frame::MAX_PAYLOAD) {
        Ok(Some(p)) => p,
        Ok(None) => return Err(bad("bad header frame")),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(bad("bad header frame")),
        Err(e) => return Err(e),
    };
    let mut hr = Reader::new(&header);
    let epoch = hr.varint().map_err(|_| bad("bad header epoch"))?;
    let total = hr.varint().map_err(|_| bad("bad header count"))?;
    if !hr.is_empty() {
        return Err(bad("trailing header bytes"));
    }

    let mut seen = 0u64;
    loop {
        let payload = match frame::read_frame_capped(&mut file, frame::MAX_PAYLOAD) {
            Ok(Some(p)) => p,
            Ok(None) => break,
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(bad("bad chunk frame")),
            Err(e) => return Err(e),
        };
        let mut r = Reader::new(&payload);
        let n = r.varint().map_err(|_| bad("bad chunk count"))?;
        let mut chunk: Vec<(K, V)> = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            let k = K::decode(&mut r).map_err(|_| bad("bad chunk key"))?;
            let v = V::decode(&mut r).map_err(|_| bad("bad chunk value"))?;
            chunk.push((k, v));
        }
        if !r.is_empty() {
            return Err(bad("trailing chunk bytes"));
        }
        seen += chunk.len() as u64;
        sink(chunk);
    }
    if seen != total {
        return Err(bad("entry count mismatch"));
    }
    Ok((epoch, total))
}

/// Load the newest checkpoint that validates, streaming its chunks into an
/// accumulator instead of materializing one giant vector: `fresh` builds
/// an empty accumulator, `absorb` folds one decoded chunk (sorted by key,
/// globally ascending across chunks) into it. Returns `(epoch, entries,
/// accumulator)`.
///
/// The accumulator is per-candidate-file: a checkpoint that turns out
/// corrupt mid-stream is abandoned (its partial accumulator dropped) and
/// the next-older one is tried — the same fallback contract as
/// [`load_latest`], which is this function specialized to `Vec`.
///
/// # Errors
///
/// Corruption (`InvalidData`) is *not* an error here — it triggers the
/// fallback to the next-older checkpoint, and running out of candidates
/// yields `Ok(None)`. Genuine I/O errors (a failing device) pass
/// through, because falling back on those could silently serve stale
/// data from a half-readable disk.
pub fn load_latest_with<K: Codec, V: Codec, M>(
    dir: &Path,
    mut fresh: impl FnMut() -> M,
    mut absorb: impl FnMut(&mut M, Vec<(K, V)>),
) -> io::Result<Option<(u64, u64, M)>> {
    if !dir.exists() {
        return Ok(None);
    }
    for (_, path) in list(dir)?.into_iter().rev() {
        let mut acc = fresh();
        match load_file_with::<K, V>(&path, &mut |chunk| absorb(&mut acc, chunk)) {
            Ok((epoch, total)) => return Ok(Some((epoch, total, acc))),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// A loaded checkpoint: the WAL epoch it claims plus its sorted entries.
pub type LoadedCheckpoint<K, V> = (u64, Vec<(K, V)>);

/// Load the newest checkpoint that validates, if any: `(epoch,
/// sorted_entries)`. A corrupt newer checkpoint silently falls back to an
/// older one (recovery then replays more WAL). Materializes the whole
/// entry vector — prefer [`load_latest_with`] for large maps.
///
/// # Errors
///
/// Only real I/O errors (a failing device, permissions) surface;
/// corruption is handled by falling back to the next-older checkpoint,
/// and no loadable checkpoint at all is `Ok(None)`.
pub fn load_latest<K: Codec, V: Codec>(dir: &Path) -> io::Result<Option<LoadedCheckpoint<K, V>>> {
    Ok(
        load_latest_with::<K, V, Vec<(K, V)>>(dir, Vec::new, |acc, mut chunk| {
            acc.append(&mut chunk)
        })?
        .map(|(epoch, _, entries)| (epoch, entries)),
    )
}

/// Remove leftover `.tmp` files from a checkpoint interrupted by a crash.
///
/// # Errors
///
/// Propagates filesystem errors from the directory walk or removals (a
/// missing directory is fine: there is nothing to clean).
pub fn clean_temp_files(dir: &Path) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let p = entry?.path();
        if p.extension().is_some_and(|e| e == "tmp") {
            fs::remove_file(p)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pam-ckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn pairs(n: u64) -> Vec<(u64, u64)> {
        (0..n).map(|i| (i, i * 3)).collect()
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let data = pairs(10_000); // spans multiple chunks
        let bytes = write(
            &dir,
            42,
            data.len() as u64,
            |emit| data.iter().for_each(|(k, v)| emit(k, v)),
            2,
        )
        .unwrap();
        assert!(bytes > 0);
        let (epoch, loaded) = load_latest::<u64, u64>(&dir).unwrap().unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(loaded, data);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_map_checkpoint() {
        let dir = tmp_dir("empty");
        write::<u64, u64>(&dir, 7, 0, |_emit| {}, 2).unwrap();
        let (epoch, loaded) = load_latest::<u64, u64>(&dir).unwrap().unwrap();
        assert_eq!(epoch, 7);
        assert!(loaded.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keeps_only_newest_and_falls_back_on_corruption() {
        let dir = tmp_dir("fallback");
        for e in [10u64, 20, 30] {
            let data = pairs(e);
            write(
                &dir,
                e,
                data.len() as u64,
                |emit| data.iter().for_each(|(k, v)| emit(k, v)),
                2,
            )
            .unwrap();
        }
        assert_eq!(list(&dir).unwrap().len(), 2, "pruned to keep=2");
        // corrupt the newest
        let newest = checkpoint_path(&dir, 30);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, bytes).unwrap();
        let (epoch, loaded) = load_latest::<u64, u64>(&dir).unwrap().unwrap();
        assert_eq!(epoch, 20, "must fall back to the older valid checkpoint");
        assert_eq!(loaded, pairs(20));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_load_sees_sorted_chunks_and_falls_back() {
        let dir = tmp_dir("streaming");
        for e in [5u64, 9] {
            let data = pairs(10_000); // several chunks
            write(
                &dir,
                e,
                data.len() as u64,
                |emit| data.iter().for_each(|(k, v)| emit(k, v)),
                2,
            )
            .unwrap();
        }
        let mut chunks = 0usize;
        let (epoch, total, flat) =
            load_latest_with::<u64, u64, Vec<(u64, u64)>>(&dir, Vec::new, |acc, chunk| {
                chunks += 1;
                assert!(chunk.windows(2).all(|w| w[0].0 < w[1].0), "chunk sorted");
                if let (Some(last), Some(first)) = (acc.last(), chunk.first()) {
                    assert!(last.0 < first.0, "chunks ascend globally");
                }
                acc.extend(chunk);
            })
            .unwrap()
            .unwrap();
        assert_eq!(epoch, 9);
        assert_eq!(total, 10_000);
        assert!(chunks > 1, "10k entries must span multiple chunks");
        assert_eq!(flat, pairs(10_000));

        // corrupt the newest: partial accumulators must be discarded and
        // the older checkpoint streamed instead
        let newest = checkpoint_path(&dir, 9);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&newest, bytes).unwrap();
        let (epoch, _, flat) =
            load_latest_with::<u64, u64, Vec<(u64, u64)>>(&dir, Vec::new, |acc, chunk| {
                acc.extend(chunk)
            })
            .unwrap()
            .unwrap();
        assert_eq!(epoch, 5, "fell back past the corrupt newest");
        assert_eq!(flat.len(), 10_000, "no partial chunks leaked in");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trailing_garbage_invalidates_a_checkpoint() {
        let dir = tmp_dir("trailing");
        for e in [3u64, 8] {
            let data = pairs(100);
            write(
                &dir,
                e,
                data.len() as u64,
                |emit| data.iter().for_each(|(k, v)| emit(k, v)),
                2,
            )
            .unwrap();
        }
        // a torn partial frame header after the last complete chunk (all
        // entries present, so only the tail scan can catch it)
        let newest = checkpoint_path(&dir, 8);
        let mut bytes = fs::read(&newest).unwrap();
        bytes.extend_from_slice(&[0x10, 0, 0]);
        fs::write(&newest, bytes).unwrap();
        let (epoch, loaded) = load_latest::<u64, u64>(&dir).unwrap().unwrap();
        assert_eq!(epoch, 3, "garbage-tailed checkpoint must not validate");
        assert_eq!(loaded, pairs(100));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_no_checkpoint() {
        let dir = tmp_dir("missing");
        assert!(load_latest::<u64, u64>(&dir).unwrap().is_none());
    }

    #[test]
    fn temp_files_are_cleaned() {
        let dir = tmp_dir("tmpclean");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("ckpt-00000000000000000001.tmp"), b"junk").unwrap();
        clean_temp_files(&dir).unwrap();
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
