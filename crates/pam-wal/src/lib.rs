//! # pam-wal — durability for persistent-map stores
//!
//! `pam-store`'s group-commit pipeline already turns concurrent writers
//! into one immutable, normalized batch per *epoch* (sorted,
//! last-write-wins deduplicated). That shape makes durability unusually
//! cheap, and this crate supplies the three mechanisms:
//!
//! * **Write-ahead log** ([`wal`]) — a segmented append-only log of epoch
//!   records, each framed as `[len | crc32 | payload]`. One record per
//!   epoch means one append (and at most one fsync) amortized over every
//!   writer in the group-commit window. Fsync behaviour is a
//!   [`SyncPolicy`]; segments rotate at a size threshold so checkpoint
//!   truncation can reclaim space at file granularity.
//! * **Checkpoints** ([`checkpoint`]) — a full snapshot of the map in
//!   sorted order, written to a temp file and atomically renamed. Because
//!   PAM maps are functional, the caller can pin a version and stream it
//!   out while writers keep committing — checkpointing never pauses the
//!   store.
//! * **Recovery** — load the newest valid checkpoint, then replay WAL
//!   epochs past it ([`wal::Wal::open`] returns them in order). A torn
//!   final record (the classic crash-mid-append) is detected by the
//!   length/checksum frame and cleanly truncated; corruption anywhere
//!   else is reported as an error.
//! * **Cross-shard atomicity metadata** — epoch records may carry a
//!   [`GlobalStamp`] (the global epoch clock value and participant count
//!   of a cross-shard atomic batch), and the sharded [`manifest`] pins
//!   the clock's committed watermark plus the discarded-batch list, so a
//!   sharded store can recover all shards to one prefix-consistent
//!   global cut ([`wal::scan_global_stamps`] is the read-only pre-scan
//!   that recovery's 2PC presence vote runs first).
//!
//! Serialization goes through the [`Codec`] trait ([`codec`]), with
//! implementations for the usual key/value primitives (integers, strings,
//! byte vectors, tuples). The crate is deliberately free of any
//! tree-library dependency: it moves bytes, not maps. `pam-store`'s
//! `DurableStore` does the wiring.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod codec;
pub mod frame;
pub mod lock;
pub mod manifest;
pub mod record;
pub mod wal;

pub use codec::{put_varint, Codec, CodecError, Reader};
pub use lock::DirLock;
pub use manifest::Manifest;
pub use record::EpochBody;
pub use wal::{EpochRecord, GlobalStamp, SyncPolicy, Wal, WalConfig, WalObs};
