//! The epoch record payload: one normalized commit batch.
//!
//! The store's committer hands the WAL exactly what it is about to apply
//! to the tree — the *normalized* epoch (puts sorted by key, deletes
//! sorted, key sets disjoint, last-write-wins already resolved). Logging
//! after normalization is what keeps replay trivial: applying an epoch
//! body to a map is one `multi_insert` plus one `multi_delete`, and
//! re-applying an epoch that is already reflected in a checkpoint is
//! idempotent (same keys, same final values), so recovery may safely
//! overlap checkpoint and log.
//!
//! Wire layout (all inside one checksummed frame, see [`crate::frame`]):
//!
//! ```text
//! [ puts_len : varint ][ (key, value) ... ][ dels_len : varint ][ key ... ]
//! ```

use crate::codec::{put_varint, Codec, CodecError, Reader};

/// A decoded epoch body: the normalized batch that was committed.
#[derive(Debug, PartialEq, Eq)]
pub struct EpochBody<K, V> {
    /// Upserts, sorted by key, distinct.
    pub puts: Vec<(K, V)>,
    /// Deleted keys, sorted, distinct, disjoint from `puts`.
    pub deletes: Vec<K>,
}

/// Serialize a normalized batch into `out`.
pub fn encode_epoch_body<K: Codec, V: Codec>(puts: &[(K, V)], deletes: &[K], out: &mut Vec<u8>) {
    put_varint(out, puts.len() as u64);
    for (k, v) in puts {
        k.encode(out);
        v.encode(out);
    }
    put_varint(out, deletes.len() as u64);
    for k in deletes {
        k.encode(out);
    }
}

/// Deserialize an epoch body; the whole of `body` must be consumed.
///
/// # Errors
///
/// Fails on any malformed key/value encoding, on counts exceeding the
/// input, or on trailing bytes (a frame that validated its CRC but was
/// written by something speaking a different schema).
pub fn decode_epoch_body<K: Codec, V: Codec>(body: &[u8]) -> Result<EpochBody<K, V>, CodecError> {
    let mut r = Reader::new(body);
    let n_puts = r.varint()?;
    let mut puts = Vec::with_capacity(n_puts.min(1 << 20) as usize);
    for _ in 0..n_puts {
        let k = K::decode(&mut r)?;
        let v = V::decode(&mut r)?;
        puts.push((k, v));
    }
    let n_dels = r.varint()?;
    let mut deletes = Vec::with_capacity(n_dels.min(1 << 20) as usize);
    for _ in 0..n_dels {
        deletes.push(K::decode(&mut r)?);
    }
    if !r.is_empty() {
        return Err(CodecError::new("trailing bytes after epoch body"));
    }
    Ok(EpochBody { puts, deletes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_body_roundtrip() {
        let puts = vec![(1u64, 10u64), (5, 50)];
        let dels = vec![2u64, 3];
        let mut buf = Vec::new();
        encode_epoch_body(&puts, &dels, &mut buf);
        let body: EpochBody<u64, u64> = decode_epoch_body(&buf).unwrap();
        assert_eq!(body.puts, puts);
        assert_eq!(body.deletes, dels);
    }

    #[test]
    fn string_keys_roundtrip() {
        let puts = vec![
            (String::from("alpha"), vec![1u8, 2]),
            (String::from("beta"), vec![]),
        ];
        let dels = vec![String::from("gone")];
        let mut buf = Vec::new();
        encode_epoch_body(&puts, &dels, &mut buf);
        let body: EpochBody<String, Vec<u8>> = decode_epoch_body(&buf).unwrap();
        assert_eq!(body.puts, puts);
        assert_eq!(body.deletes, dels);
    }

    #[test]
    fn truncated_body_fails() {
        let mut buf = Vec::new();
        encode_epoch_body(&[(1u64, 2u64)], &[3u64], &mut buf);
        for cut in 0..buf.len() {
            assert!(decode_epoch_body::<u64, u64>(&buf[..cut]).is_err());
        }
    }
}
