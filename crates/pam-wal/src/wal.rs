//! The segmented append-only write-ahead log.
//!
//! A WAL directory holds numbered segment files:
//!
//! ```text
//! wal-00000000000000000001.seg      <- name = first epoch the segment holds
//! wal-00000000000000004821.seg
//! wal-00000000000000009644.seg      <- the active tail, appended to
//! ```
//!
//! Each segment starts with an 8-byte magic and then a run of checksummed
//! frames (see [`crate::frame`]), one per committed epoch. Two record
//! layouts exist, distinguished by the segment magic:
//!
//! * `PAMWAL01` (v1, read-only): payload is `varint(epoch)` followed by
//!   the epoch body ([`crate::record`]);
//! * `PAMWAL02` (v2, written by this crate): payload is `varint(epoch) ++
//!   varint(global_epoch) ++ varint(participants) ++ body`, where the two
//!   extra fields carry the *global epoch clock* stamp of a cross-shard
//!   batch ([`GlobalStamp`]; both zero for ordinary single-shard epochs).
//!
//! Old v1 segments replay transparently (their records simply carry no
//! stamp). A v1 *active tail* is sealed on open — its torn tail is still
//! truncated, but new appends go to a fresh v2 segment, so a segment
//! never mixes record layouts.
//!
//! *Rotation*: when the active segment outgrows
//! [`WalConfig::segment_bytes`], it is fsynced, sealed, and a fresh
//! segment named after the next epoch is started. Sealing makes space
//! reclamation trivial: after a checkpoint at epoch `E`,
//! [`Wal::truncate_through`] unlinks every sealed segment whose entire
//! contents are `<= E` — whole-file deletes, no rewriting.
//!
//! *Recovery*: [`Wal::open`] scans the segments in order and returns every
//! valid epoch record. A torn or corrupt frame at the tail of the **last**
//! segment is the expected signature of a crash mid-append: the tail is
//! truncated to the last whole record and appending resumes there.
//! Corruption anywhere earlier is reported as an error — sealed segments
//! were fsynced before rotation, so damage there means the disk lied.
//!
//! The first invalid frame in the *active* segment ends the scan even if
//! valid-looking frames follow (RocksDB's "tolerate corrupted tail
//! records" policy). This is deliberate: page writeback is unordered, so
//! a crash can persist record N+1's page while losing record N's —
//! replaying N+1 across the hole would violate the log's prefix
//! semantics. The cost is that mid-active-segment *bit rot* (as opposed
//! to crash damage) silently discards the records after it; bit rot in
//! the much larger sealed portion of the log is still a hard error.

use crate::frame::{self, Frame};
use pam_obs::{event, Histogram, Level};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Magic bytes opening a v1 segment file (read-compat only; new
/// segments are written as [`SEGMENT_MAGIC_V2`]).
pub const SEGMENT_MAGIC: &[u8; 8] = b"PAMWAL01";

/// Magic bytes opening a v2 segment file (records carry a
/// [`GlobalStamp`]).
pub const SEGMENT_MAGIC_V2: &[u8; 8] = b"PAMWAL02";

/// The global-epoch-clock stamp of a cross-shard atomic batch.
///
/// A sharded store mints one stamp per cross-shard `write_batch` and
/// logs it with every per-shard slice of the batch. Recovery counts the
/// shards on which a given global epoch survives: a stamp present on
/// some-but-not-all of its `participants` shards marks a *torn* batch,
/// which is discarded everywhere (2PC-style presence voting — see
/// `pam-store`'s `DurableShardedStore`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalStamp {
    /// The global epoch assigned by the store-wide clock (monotone
    /// across all shards; `0` is never a valid stamp).
    pub epoch: u64,
    /// How many shards received a slice of this batch — the vote count
    /// recovery requires before committing the global epoch.
    pub participants: u32,
}

/// When the WAL issues `fsync` for appended epoch records.
///
/// Group commit makes every policy a *group* fsync: one record (and at
/// most one fsync) covers all writers batched into the epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Never fsync from the append path; the OS flushes at its leisure.
    /// An acked write survives a process crash, not a power cut.
    NoSync,
    /// Fsync after every epoch record: an acked write is on stable
    /// storage before the ticket holder wakes.
    SyncEachEpoch,
    /// Fsync once every N epoch records: bounded loss (at most the last
    /// N-1 epochs) at a fraction of the fsync count.
    SyncEveryN(u64),
    /// Fsync once at least N bytes have been appended since the last
    /// sync: bounds loss by *data volume* instead of epoch count, which
    /// is the useful knob when epoch sizes vary wildly (a burst of tiny
    /// epochs syncs rarely; one huge epoch syncs immediately).
    SyncEveryBytes(u64),
}

/// Tuning for a [`Wal`].
#[derive(Clone, Copy, Debug)]
pub struct WalConfig {
    /// Seal the active segment and start a new one once it exceeds this
    /// many bytes.
    pub segment_bytes: u64,
    /// Fsync policy for appends.
    pub sync: SyncPolicy,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 16 << 20,
            sync: SyncPolicy::SyncEachEpoch,
        }
    }
}

/// One recovered epoch record: the epoch number, its cross-shard stamp
/// (if any), and its body bytes (decode with
/// [`crate::record::decode_epoch_body`]).
#[derive(Debug)]
pub struct EpochRecord {
    /// The epoch this record logged.
    pub epoch: u64,
    /// The global epoch stamp, when this record is one shard's slice of
    /// a cross-shard atomic batch (`None` for ordinary epochs and for
    /// all records recovered from v1 segments).
    pub global: Option<GlobalStamp>,
    /// The serialized epoch body.
    pub body: Vec<u8>,
}

/// Hot-path observability for one [`Wal`]: shared out via [`Wal::obs`]
/// so the durability layer can snapshot append/fsync latency and
/// rotation counts without holding the WAL mutex.
#[derive(Debug, Default)]
pub struct WalObs {
    /// Latency of whole [`Wal::append`] calls, nanoseconds (includes
    /// any rotation and fsync the append performed).
    pub append_nanos: Histogram,
    /// Latency of each `fsync` (`sync_data`) on the append path,
    /// nanoseconds.
    pub fsync_nanos: Histogram,
    /// Segment rotations performed since open.
    pub rotations: AtomicU64,
}

impl WalObs {
    /// Rotations performed since open.
    pub fn rotations(&self) -> u64 {
        // relaxed: monitoring counter; no data is published through it
        self.rotations.load(Ordering::Relaxed)
    }
}

/// Outcome of one [`Wal::append`].
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// Bytes this append added to the log (frame included).
    pub bytes: u64,
    /// Whether this append ended with an fsync.
    pub synced: bool,
}

struct Segment {
    first_epoch: u64,
    path: PathBuf,
}

/// The segmented write-ahead log. Not internally synchronized — the
/// store's committer is its only writer (wrap in a mutex to share).
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    /// Sealed (rotation-complete) segments, oldest first.
    sealed: Vec<Segment>,
    /// The active tail: file handle, metadata, current byte size.
    current: Option<(File, Segment, u64)>,
    last_epoch: u64,
    epochs_since_sync: u64,
    bytes_since_sync: u64,
    obs: Arc<WalObs>,
}

fn segment_path(dir: &Path, first_epoch: u64) -> PathBuf {
    dir.join(format!("wal-{first_epoch:020}.seg"))
}

fn parse_segment_name(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("wal-")?.strip_suffix(".seg")?;
    digits.parse().ok()
}

/// Flush directory metadata (file creation/deletion) to disk.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn corrupt(msg: &str, path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{msg} in WAL segment {}", path.display()),
    )
}

/// One decoded segment: its format version, its records, the byte
/// offset of the first invalid frame (= file length when every frame was
/// valid), and whether the scan stopped at a torn/corrupt tail frame.
struct SegmentScan {
    /// `true` for `PAMWAL02` segments (records carry a stamp field).
    v2: bool,
    records: Vec<EpochRecord>,
    pos: usize,
    tail_torn: bool,
}

/// Scan one segment's frames. With `tolerate_torn_tail` (the active
/// segment) the first invalid frame ends the scan and is reported via
/// `tail_torn`; without it (sealed segments, fsynced before rotation)
/// any invalid frame is a hard error — damage there means the disk lied.
/// The record layout (v1 vs v2) is chosen by the segment's magic.
fn scan_segment(path: &Path, tolerate_torn_tail: bool) -> io::Result<SegmentScan> {
    let bytes = fs::read(path)?;
    if bytes.len() < SEGMENT_MAGIC.len() {
        return Err(corrupt("missing magic", path));
    }
    let v2 = match &bytes[..SEGMENT_MAGIC.len()] {
        m if m == SEGMENT_MAGIC_V2 => true,
        m if m == SEGMENT_MAGIC => false,
        _ => return Err(corrupt("bad magic", path)),
    };
    let mut records = Vec::new();
    let mut pos = SEGMENT_MAGIC.len();
    let mut tail_torn = false;
    while pos < bytes.len() {
        match frame::next_frame(&bytes[pos..]) {
            Frame::Ok { payload, consumed } => {
                let mut r = crate::codec::Reader::new(payload);
                let epoch = r.varint().map_err(|_| corrupt("bad epoch field", path))?;
                let global = if v2 {
                    let g = r.varint().map_err(|_| corrupt("bad global field", path))?;
                    let parts = r
                        .varint()
                        .map_err(|_| corrupt("bad participants field", path))?;
                    (g != 0).then_some(GlobalStamp {
                        epoch: g,
                        participants: parts as u32,
                    })
                } else {
                    None
                };
                records.push(EpochRecord {
                    epoch,
                    global,
                    body: payload[payload.len() - r.remaining()..].to_vec(),
                });
                pos += consumed;
            }
            Frame::Torn | Frame::Corrupt if tolerate_torn_tail => {
                tail_torn = true;
                break;
            }
            Frame::Torn => return Err(corrupt("torn record mid-log", path)),
            Frame::Corrupt => return Err(corrupt("corrupt record mid-log", path)),
        }
    }
    Ok(SegmentScan {
        v2,
        records,
        pos,
        tail_torn,
    })
}

/// List the segment files in `dir`, sorted by first epoch. A missing
/// directory yields an empty list (a store that has never written).
fn segment_paths(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut paths: Vec<(u64, PathBuf)> = entries
        .filter_map(|e| {
            let p = e.ok()?.path();
            Some((parse_segment_name(&p)?, p))
        })
        .collect();
    paths.sort_by_key(|&(e, _)| e);
    Ok(paths)
}

/// Read-only pre-scan of a WAL directory for cross-shard batch stamps:
/// every [`GlobalStamp`] on a surviving record, in log order. The last
/// segment's torn tail is tolerated exactly as [`Wal::open`] tolerates
/// it (the stamps visible here are the stamps replay will see), but
/// nothing is truncated or modified. A missing directory is an empty
/// log.
///
/// The sharded recovery path runs this on **every** shard before opening
/// **any** shard: the 2PC presence vote (is global epoch `G` logged on
/// all of its participants?) needs the cross-shard view first.
///
/// # Errors
///
/// Propagates I/O errors, and `InvalidData` for corruption outside the
/// tolerated active-segment tail — the same contract as [`Wal::open`].
pub fn scan_global_stamps(dir: impl AsRef<Path>) -> io::Result<Vec<GlobalStamp>> {
    let paths = segment_paths(dir.as_ref())?;
    let mut stamps = Vec::new();
    for (i, (_, path)) in paths.iter().enumerate() {
        let last = i + 1 == paths.len();
        if last && fs::metadata(path)?.len() < SEGMENT_MAGIC.len() as u64 {
            // crash between segment creation and the magic write: open
            // will discard this file; it holds no records
            continue;
        }
        let scan = scan_segment(path, last)?;
        stamps.extend(scan.records.iter().filter_map(|r| r.global));
    }
    Ok(stamps)
}

impl Wal {
    /// Open (or create) the log in `dir`, returning the WAL positioned
    /// for appending plus every valid epoch record, in log order.
    ///
    /// Sealed segments are read and frame-decoded **in parallel** (they
    /// are independent files with independent checksums; order is
    /// restored when the per-segment record lists are concatenated).
    /// Only the active tail — which may legitimately end in a torn
    /// record — is scanned sequentially and truncated to its last whole
    /// record. An old-format (v1) active tail is additionally *sealed*:
    /// its records replay, but new appends start a fresh v2 segment so a
    /// segment never mixes record layouts. See the module docs for the
    /// recovery contract.
    ///
    /// # Errors
    ///
    /// `InvalidData` for corruption outside the tolerated active-segment
    /// tail (sealed segments were fsynced before rotation — damage there
    /// means the disk lied); other kinds pass through from the
    /// filesystem.
    pub fn open(dir: impl AsRef<Path>, config: WalConfig) -> io::Result<(Wal, Vec<EpochRecord>)> {
        use rayon::prelude::*;

        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        let paths = segment_paths(&dir)?;

        // Every segment but the last is sealed: decode them concurrently.
        let sealed_count = paths.len().saturating_sub(1);
        let scans: Vec<io::Result<SegmentScan>> = paths[..sealed_count]
            .par_iter()
            .map(|(_, path)| scan_segment(path, false))
            .collect();
        let mut records = Vec::new();
        let mut sealed = Vec::new();
        for (scan, (first_epoch, path)) in scans.into_iter().zip(&paths[..sealed_count]) {
            records.extend(scan?.records);
            sealed.push(Segment {
                first_epoch: *first_epoch,
                path: path.clone(),
            });
        }

        // The active tail: scan sequentially, tolerating (and truncating)
        // a torn final record.
        let mut current = None;
        if let Some((first_epoch, path)) = paths.last() {
            if fs::metadata(path)?.len() < SEGMENT_MAGIC.len() as u64 {
                // crash between segment creation and the magic write:
                // the file holds no records, discard it
                fs::remove_file(path)?;
                sync_dir(&dir)?;
            } else {
                let scan = scan_segment(path, true)?;
                let tail_empty = scan.records.is_empty();
                records.extend(scan.records);
                let mut file = OpenOptions::new().read(true).write(true).open(path)?;
                if scan.tail_torn {
                    file.set_len(scan.pos as u64)?;
                    file.sync_data()?;
                }
                if scan.v2 {
                    file.seek(SeekFrom::Start(scan.pos as u64))?;
                    current = Some((
                        file,
                        Segment {
                            first_epoch: *first_epoch,
                            path: path.clone(),
                        },
                        scan.pos as u64,
                    ));
                } else if tail_empty {
                    // v1 tail holding no records (a v1 store crashed
                    // between rotation's magic write and the first
                    // frame): discard it. Sealing it would leave a file
                    // named `first_epoch` == the next epoch to append,
                    // and the fresh v2 segment's create_new would then
                    // collide with it.
                    drop(file);
                    fs::remove_file(path)?;
                    sync_dir(&dir)?;
                } else {
                    // v1 tail: seal it (fsync the truncation, keep the
                    // records) and let the next append start a fresh v2
                    // segment — a segment never mixes record layouts.
                    file.sync_data()?;
                    drop(file);
                    sealed.push(Segment {
                        first_epoch: *first_epoch,
                        path: path.clone(),
                    });
                }
            }
        }

        let last_epoch = records.iter().map(|r| r.epoch).max().unwrap_or(0);
        Ok((
            Wal {
                dir,
                config,
                sealed,
                current,
                last_epoch,
                epochs_since_sync: 0,
                bytes_since_sync: 0,
                obs: Arc::new(WalObs::default()),
            },
            records,
        ))
    }

    /// Append one epoch record. `epoch` must be greater than every epoch
    /// appended or recovered so far; `global` is the cross-shard batch
    /// stamp when this epoch is one shard's slice of an atomic
    /// multi-shard batch (`None` for ordinary epochs). Applies the
    /// configured [`SyncPolicy`] and rotates segments as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write, fsync, or rotation.
    /// The caller (the store's commit hook) treats any failure as
    /// fail-stop.
    pub fn append(
        &mut self,
        epoch: u64,
        global: Option<GlobalStamp>,
        body: &[u8],
    ) -> io::Result<AppendInfo> {
        debug_assert!(epoch > self.last_epoch, "epochs must be monotone");
        let append_start = Instant::now();
        // Rotate a full active segment *before* the append so a segment
        // never splits an epoch.
        if let Some((file, seg, size)) = self.current.take() {
            if size >= self.config.segment_bytes {
                self.timed_fsync(&file)?; // sealed segments are always durable
                self.epochs_since_sync = 0;
                self.bytes_since_sync = 0;
                // relaxed: monitoring counter; the fsync above is what
                // actually seals the segment
                self.obs.rotations.fetch_add(1, Ordering::Relaxed);
                event!(
                    Level::Info,
                    "pam_wal",
                    "sealed segment {} at {size} bytes",
                    seg.path.display()
                );
                self.sealed.push(seg);
            } else {
                self.current = Some((file, seg, size));
            }
        }
        if self.current.is_none() {
            let seg = Segment {
                first_epoch: epoch,
                path: segment_path(&self.dir, epoch),
            };
            let mut file = OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&seg.path)?;
            file.write_all(SEGMENT_MAGIC_V2)?;
            sync_dir(&self.dir)?;
            self.current = Some((file, seg, SEGMENT_MAGIC_V2.len() as u64));
        }

        let mut payload = Vec::with_capacity(20 + body.len());
        crate::codec::put_varint(&mut payload, epoch);
        crate::codec::put_varint(&mut payload, global.map_or(0, |s| s.epoch));
        crate::codec::put_varint(
            &mut payload,
            global.map_or(0, |s| u64::from(s.participants)),
        );
        payload.extend_from_slice(body);
        let mut buf = Vec::with_capacity(frame::HEADER_LEN + payload.len());
        let framed = frame::put_frame(&mut buf, &payload) as u64;

        // lint: allow(panic) open()/rotate() always leave a segment
        // open before append can run — a missing one is a linked-list
        // bug in this file, not a runtime condition
        let (file, _, size) = self.current.as_mut().expect("active segment");
        file.write_all(&buf)?;
        *size += framed;
        self.last_epoch = epoch;
        self.epochs_since_sync += 1;
        self.bytes_since_sync += framed;

        let synced = match self.config.sync {
            SyncPolicy::NoSync => false,
            SyncPolicy::SyncEachEpoch => true,
            SyncPolicy::SyncEveryN(n) => self.epochs_since_sync >= n.max(1),
            SyncPolicy::SyncEveryBytes(n) => self.bytes_since_sync >= n.max(1),
        };
        if synced {
            let t = Instant::now();
            file.sync_data()?;
            self.obs.fsync_nanos.record_duration(t.elapsed());
            self.epochs_since_sync = 0;
            self.bytes_since_sync = 0;
        }
        self.obs
            .append_nanos
            .record_duration(append_start.elapsed());
        Ok(AppendInfo {
            bytes: framed,
            synced,
        })
    }

    /// Force an fsync of the active segment (no-op when nothing is open).
    ///
    /// # Errors
    ///
    /// Propagates the fsync failure.
    pub fn sync(&mut self) -> io::Result<bool> {
        if let Some((file, _, _)) = self.current.as_mut() {
            if self.epochs_since_sync > 0 {
                let t = Instant::now();
                file.sync_data()?;
                self.obs.fsync_nanos.record_duration(t.elapsed());
                self.epochs_since_sync = 0;
                self.bytes_since_sync = 0;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// `sync_data` with the latency recorded into the fsync histogram.
    fn timed_fsync(&self, file: &File) -> io::Result<()> {
        let t = Instant::now();
        file.sync_data()?;
        self.obs.fsync_nanos.record_duration(t.elapsed());
        Ok(())
    }

    /// Shared handle to this log's hot-path metrics (append/fsync
    /// latency histograms, rotation count). Cheap to clone and safe to
    /// read while appends are in flight.
    pub fn obs(&self) -> Arc<WalObs> {
        Arc::clone(&self.obs)
    }

    /// Unlink every sealed segment whose contents are entirely covered by
    /// a checkpoint at `epoch` (i.e. all its records have epoch `<=
    /// epoch`). Returns the number of segments removed. The active
    /// segment is never removed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the unlinks or the directory
    /// fsync.
    pub fn truncate_through(&mut self, epoch: u64) -> io::Result<usize> {
        // A sealed segment's coverage ends where its successor begins, so
        // `sealed[i]` is wholly <= epoch iff successor.first_epoch <=
        // epoch + 1.
        let mut removable = 0;
        for i in 0..self.sealed.len() {
            let next_first = self
                .sealed
                .get(i + 1)
                .map(|s| s.first_epoch)
                .or(self.current.as_ref().map(|(_, s, _)| s.first_epoch));
            match next_first {
                Some(f) if f <= epoch + 1 => removable = i + 1,
                _ => break,
            }
        }
        for seg in self.sealed.drain(..removable) {
            fs::remove_file(&seg.path)?;
        }
        if removable > 0 {
            sync_dir(&self.dir)?;
        }
        Ok(removable)
    }

    /// Highest epoch ever appended to (or recovered from) this log.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Number of segment files (sealed + active).
    pub fn segments(&self) -> usize {
        self.sealed.len() + usize::from(self.current.is_some())
    }

    /// Bytes in the active segment (sealed segment sizes live on disk).
    pub fn active_bytes(&self) -> u64 {
        self.current.as_ref().map_or(0, |&(_, _, size)| size)
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

impl Drop for Wal {
    /// Best-effort flush so a clean shutdown loses nothing even under
    /// [`SyncPolicy::NoSync`].
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("pam-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn body(n: u64) -> Vec<u8> {
        let mut b = Vec::new();
        crate::record::encode_epoch_body(&[(n, n * 10)], &[], &mut b);
        b
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmp_dir("roundtrip");
        {
            let (mut wal, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
            assert!(recs.is_empty());
            for e in 1..=5u64 {
                let info = wal.append(e, None, &body(e)).unwrap();
                assert!(info.synced);
                assert!(info.bytes > 0);
            }
            assert_eq!(wal.last_epoch(), 5);
        }
        let (wal, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(
            recs.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(recs[2].body, body(3));
        assert_eq!(wal.last_epoch(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_truncation() {
        let dir = tmp_dir("rotate");
        let cfg = WalConfig {
            segment_bytes: 64, // force a rotation every couple of epochs
            sync: SyncPolicy::NoSync,
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        for e in 1..=20u64 {
            wal.append(e, None, &body(e)).unwrap();
        }
        assert!(wal.segments() > 3, "tiny segments must have rotated");
        let before = wal.segments();
        let removed = wal.truncate_through(10).unwrap();
        assert!(removed > 0);
        assert_eq!(wal.segments(), before - removed);
        drop(wal);
        // records > 10 all survive; records <= 10 may survive (segment
        // granularity) but never beyond the active coverage
        let (_, recs) = Wal::open(&dir, cfg).unwrap();
        let epochs: Vec<u64> = recs.iter().map(|r| r.epoch).collect();
        for e in 11..=20 {
            assert!(epochs.contains(&e), "epoch {e} lost by truncation");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let dir = tmp_dir("torn");
        let cfg = WalConfig::default();
        {
            let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
            for e in 1..=3u64 {
                wal.append(e, None, &body(e)).unwrap();
            }
        }
        // simulate a crash mid-append: a frame header promising more
        // bytes than were written
        let seg = segment_path(&dir, 1);
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[200, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3])
            .unwrap();
        drop(f);

        let (mut wal, recs) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(recs.len(), 3, "torn tail must not hide whole records");
        wal.append(4, None, &body(4)).unwrap();
        drop(wal);
        let (_, recs) = Wal::open(&dir, cfg).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![1, 2, 3, 4],
            "append after tail truncation must produce a clean log"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_sealed_segment_is_an_error() {
        let dir = tmp_dir("sealed-corrupt");
        let cfg = WalConfig {
            segment_bytes: 32,
            sync: SyncPolicy::NoSync,
        };
        {
            let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
            for e in 1..=10u64 {
                wal.append(e, None, &body(e)).unwrap();
            }
            assert!(wal.segments() >= 2);
        }
        // flip a byte in the first (sealed) segment's first record
        let seg = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg).unwrap();
        let idx = SEGMENT_MAGIC.len() + frame::HEADER_LEN + 1;
        bytes[idx] ^= 0xff;
        fs::write(&seg, bytes).unwrap();
        let err = match Wal::open(&dir, cfg) {
            Err(e) => e,
            Ok(_) => panic!("corrupt sealed segment must fail open"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_every_bytes_counts_fsyncs() {
        let dir = tmp_dir("every-bytes");
        let one_record = {
            let mut payload = Vec::new();
            crate::codec::put_varint(&mut payload, 1);
            crate::codec::put_varint(&mut payload, 0); // no global stamp
            crate::codec::put_varint(&mut payload, 0);
            payload.extend_from_slice(&body(1));
            (frame::HEADER_LEN + payload.len()) as u64
        };
        // threshold = two records: every second append syncs
        let cfg = WalConfig {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::SyncEveryBytes(2 * one_record),
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        let synced: Vec<bool> = (1..=6u64)
            .map(|e| wal.append(e, None, &body(e)).unwrap().synced)
            .collect();
        assert_eq!(synced, vec![false, true, false, true, false, true]);
        assert!(
            !wal.sync().unwrap(),
            "nothing pending after a synced append"
        );
        wal.append(7, None, &body(7)).unwrap();
        assert!(wal.sync().unwrap(), "pending bytes need a final sync");
        drop(wal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_every_n_counts_fsyncs() {
        let dir = tmp_dir("every-n");
        let cfg = WalConfig {
            segment_bytes: 1 << 20,
            sync: SyncPolicy::SyncEveryN(3),
        };
        let (mut wal, _) = Wal::open(&dir, cfg).unwrap();
        let synced: Vec<bool> = (1..=7u64)
            .map(|e| wal.append(e, None, &body(e)).unwrap().synced)
            .collect();
        assert_eq!(synced, vec![false, false, true, false, false, true, false]);
        assert!(wal.sync().unwrap(), "pending epochs need a final sync");
        assert!(!wal.sync().unwrap(), "nothing pending after sync");
        drop(wal);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn global_stamps_roundtrip_and_prescan() {
        let dir = tmp_dir("stamps");
        let stamp = |g, p| {
            Some(GlobalStamp {
                epoch: g,
                participants: p,
            })
        };
        {
            let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
            wal.append(1, None, &body(1)).unwrap();
            wal.append(2, stamp(7, 3), &body(2)).unwrap();
            wal.append(3, None, &body(3)).unwrap();
            wal.append(4, stamp(9, 2), &body(4)).unwrap();
        }
        let (_, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        let globals: Vec<_> = recs.iter().map(|r| r.global).collect();
        assert_eq!(
            globals,
            vec![None, stamp(7, 3), None, stamp(9, 2)],
            "stamps must survive a reopen exactly"
        );
        assert_eq!(recs[1].body, body(2), "stamp fields must not eat the body");
        // the read-only pre-scan sees the same stamps without touching
        // the log
        let stamps = scan_global_stamps(&dir).unwrap();
        assert_eq!(
            stamps,
            vec![
                GlobalStamp {
                    epoch: 7,
                    participants: 3
                },
                GlobalStamp {
                    epoch: 9,
                    participants: 2
                }
            ]
        );
        assert!(
            scan_global_stamps(dir.join("nonexistent"))
                .unwrap()
                .is_empty(),
            "a store that never wrote has no stamps"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Write a raw v1 segment (`PAMWAL01`, records = varint(epoch) ++
    /// body) the way PR 2–4 stores laid them down.
    fn write_v1_segment(path: &Path, epochs: &[u64]) {
        let mut bytes = SEGMENT_MAGIC.to_vec();
        for &e in epochs {
            let mut payload = Vec::new();
            crate::codec::put_varint(&mut payload, e);
            payload.extend_from_slice(&body(e));
            frame::put_frame(&mut bytes, &payload);
        }
        fs::write(path, bytes).unwrap();
    }

    #[test]
    fn v1_segments_still_replay_and_tail_is_sealed() {
        let dir = tmp_dir("v1-compat");
        fs::create_dir_all(&dir).unwrap();
        write_v1_segment(&segment_path(&dir, 1), &[1, 2, 3]);

        let (mut wal, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recs.iter().map(|r| r.epoch).collect::<Vec<_>>(), [1, 2, 3]);
        assert!(
            recs.iter().all(|r| r.global.is_none()),
            "v1 records carry no stamp"
        );
        assert_eq!(recs[1].body, body(2));
        assert_eq!(wal.last_epoch(), 3);

        // appending resumes in a *new* v2 segment; the v1 file is sealed
        wal.append(
            4,
            Some(GlobalStamp {
                epoch: 1,
                participants: 2,
            }),
            &body(4),
        )
        .unwrap();
        assert_eq!(wal.segments(), 2, "v1 tail sealed, fresh v2 tail opened");
        let head = fs::read(segment_path(&dir, 4)).unwrap();
        assert_eq!(&head[..8], SEGMENT_MAGIC_V2);
        drop(wal);

        let (_, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            [1, 2, 3, 4],
            "mixed v1+v2 logs replay in order"
        );
        assert_eq!(recs[3].global.map(|s| s.epoch), Some(1));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_v1_tail_is_discarded_not_sealed() {
        // A v1 store that crashed between rotation's magic write and the
        // first frame leaves an active segment holding only the magic,
        // named after the epoch the *next* append will use. Sealing it
        // would make that append's create_new collide with the file.
        let dir = tmp_dir("v1-empty-tail");
        fs::create_dir_all(&dir).unwrap();
        write_v1_segment(&segment_path(&dir, 1), &[1, 2, 3, 4]);
        fs::write(segment_path(&dir, 5), SEGMENT_MAGIC).unwrap();

        let (mut wal, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            [1, 2, 3, 4]
        );
        wal.append(5, None, &body(5))
            .expect("append must not collide with the discarded v1 tail");
        drop(wal);
        let (_, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(
            recs.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            [1, 2, 3, 4, 5]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_torn_tail_is_truncated_then_sealed() {
        let dir = tmp_dir("v1-torn");
        fs::create_dir_all(&dir).unwrap();
        let seg = segment_path(&dir, 1);
        write_v1_segment(&seg, &[1, 2]);
        // a torn half-record at the v1 tail, as a crash would leave
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&[44, 0, 0, 0, 0xde, 0xad]);
        fs::write(&seg, bytes).unwrap();

        let (mut wal, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recs.iter().map(|r| r.epoch).collect::<Vec<_>>(), [1, 2]);
        wal.append(3, None, &body(3)).unwrap();
        drop(wal);
        // the truncation stuck: reopening treats the v1 file as sealed,
        // where a torn frame would be a hard error
        let (_, recs) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(recs.iter().map(|r| r.epoch).collect::<Vec<_>>(), [1, 2, 3]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
