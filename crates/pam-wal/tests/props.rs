//! Property tests: codec round-trips and frame-scan invariants.

use pam_wal::codec::put_varint;
use pam_wal::record::{decode_epoch_body, encode_epoch_body};
use pam_wal::{frame, Codec, Reader};
use proptest::prelude::*;

fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: &T) -> T {
    let mut buf = Vec::new();
    v.encode(&mut buf);
    let mut r = Reader::new(&buf);
    let back = T::decode(&mut r).expect("decode what encode produced");
    assert!(r.is_empty(), "decode must consume the exact encoding");
    back
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varints_roundtrip(v in 0u64..u64::MAX) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn signed_ints_roundtrip(v in i64::MIN..i64::MAX) {
        prop_assert_eq!(roundtrip(&v), v);
        let small = (v % (1 << 30)) as i32;
        prop_assert_eq!(roundtrip(&small), small);
    }

    #[test]
    fn byte_vecs_roundtrip(v in collection::vec((0u16..256).prop_map(|b| b as u8), 0..200)) {
        prop_assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn strings_roundtrip(chars in collection::vec(0u32..0x024F, 0..64)) {
        // includes multi-byte code points (Latin Extended)
        let s: String = chars
            .into_iter()
            .filter_map(char::from_u32)
            .collect();
        prop_assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn tuples_concatenate(k in 0u64..1_000_000, n in 0u8..255) {
        let pair = (k, vec![n; (n % 17) as usize]);
        prop_assert_eq!(roundtrip(&pair), pair);
        // concatenation: two values encoded back-to-back decode in order
        let mut buf = Vec::new();
        k.encode(&mut buf);
        n.encode(&mut buf);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(u64::decode(&mut r).unwrap(), k);
        prop_assert_eq!(u8::decode(&mut r).unwrap(), n);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn epoch_bodies_roundtrip(
        puts in collection::vec((0u64..1000, 0u64..1_000_000), 0..50),
        dels in collection::vec(0u64..1000, 0..50),
    ) {
        let mut buf = Vec::new();
        encode_epoch_body(&puts, &dels, &mut buf);
        let body = decode_epoch_body::<u64, u64>(&buf).unwrap();
        prop_assert_eq!(body.puts, puts);
        prop_assert_eq!(body.deletes, dels);
    }

    #[test]
    fn framed_payloads_survive_and_prefixes_never_lie(
        payload in collection::vec((0u16..256).prop_map(|b| b as u8), 0..300),
    ) {
        let mut buf = Vec::new();
        frame::put_frame(&mut buf, &payload);
        match frame::next_frame(&buf) {
            frame::Frame::Ok { payload: got, consumed } => {
                assert_eq!(got, &payload[..]);
                assert_eq!(consumed, buf.len());
            }
            other => panic!("whole frame must scan Ok, got {other:?}"),
        }
        // no strict prefix may scan as a valid frame (torn-tail safety)
        for cut in 0..buf.len() {
            match frame::next_frame(&buf[..cut]) {
                frame::Frame::Ok { .. } => panic!("prefix {cut} scanned as whole frame"),
                frame::Frame::Torn | frame::Frame::Corrupt => {}
            }
        }
    }

    #[test]
    fn random_garbage_never_panics_the_decoder(bytes in collection::vec((0u16..256).prop_map(|b| b as u8), 0..120)) {
        // any of these may fail, none may panic or over-read
        let _ = decode_epoch_body::<u64, u64>(&bytes);
        let _ = decode_epoch_body::<String, Vec<u8>>(&bytes);
        let _ = frame::next_frame(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = String::decode(&mut r);
    }
}

#[test]
fn varint_encoding_is_minimal_for_smalls() {
    for v in 0u64..128 {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        assert_eq!(buf.len(), 1, "one byte for {v}");
    }
}
