//! Invariant checking for tests and property tests.
//!
//! [`check_tree`] verifies, for every node:
//!
//! 1. **order** — in-order keys strictly increase under `S::compare`;
//! 2. **size** — the cached subtree size is correct;
//! 3. **augmentation** — the stored augmented value equals
//!    `f(g(k1,v1), ..., g(kn,vn))` recomputed from scratch;
//! 4. **balance** — the scheme's local invariant holds ([`Balance::local_ok`]).

use crate::balance::Balance;
use crate::node::{Node, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// Check all structural invariants of `t`; returns a description of the
/// first violation found.
pub fn check_tree<S, B>(t: &Tree<S, B>) -> Result<(), String>
where
    S: AugSpec,
    S::A: PartialEq + std::fmt::Debug,
    B: Balance,
{
    // order
    let mut prev: Option<&S::K> = None;
    for (k, _) in crate::iter::Iter::new(t) {
        if let Some(p) = prev {
            if S::compare(p, k) != Ordering::Less {
                return Err("keys not strictly increasing".into());
            }
        }
        prev = Some(k);
    }
    // size / aug / balance
    rec(t).map(|_| ())
}

fn rec<S, B>(t: &Tree<S, B>) -> Result<(usize, Option<S::A>), String>
where
    S: AugSpec,
    S::A: PartialEq + std::fmt::Debug,
    B: Balance,
{
    let n: &Node<S, B> = match t.as_deref() {
        None => return Ok((0, None)),
        Some(n) => n,
    };
    let (ls, laug) = rec(&n.left)?;
    let (rs, raug) = rec(&n.right)?;
    if n.size != ls + rs + 1 {
        return Err(format!(
            "size mismatch: stored {} != {}",
            n.size,
            ls + rs + 1
        ));
    }
    let mid = S::base(&n.key, &n.val);
    let expect = match (laug, raug) {
        (None, None) => mid,
        (Some(l), None) => S::combine(&l, &mid),
        (None, Some(r)) => S::combine(&mid, &r),
        (Some(l), Some(r)) => S::combine(&l, &S::combine(&mid, &r)),
    };
    if n.aug != expect {
        return Err(format!(
            "augmented value mismatch: stored {:?} != recomputed {:?}",
            n.aug, expect
        ));
    }
    if !B::local_ok(n) {
        return Err(format!("{} balance invariant violated", B::NAME));
    }
    Ok((n.size, Some(n.aug.clone())))
}
