//! Invariant checking for tests and property tests.
//!
//! [`check_tree`] verifies, for every node:
//!
//! 1. **order** — in-order keys strictly increase under `S::compare`;
//! 2. **size** — the cached subtree size is correct;
//! 3. **augmentation** — the stored augmented value equals
//!    `f(g(k1,v1), ..., g(kn,vn))` recomputed from scratch;
//! 4. **balance** — the scheme's local invariant holds ([`Balance::local_ok`]);
//! 5. **leaf fill** — blocks are non-empty, at most `LEAF_CAP` long, and
//!    non-root blocks are at least half full; for `LEAF_CAP >= 2` a
//!    subtree of size `<= LEAF_CAP` must *be* a single block (internal
//!    nodes only exist above block capacity).

use crate::balance::Balance;
use crate::node::{Node, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// Check all structural invariants of `t`; returns a description of the
/// first violation found.
pub fn check_tree<S, B>(t: &Tree<S, B>) -> Result<(), String>
where
    S: AugSpec,
    S::A: PartialEq + std::fmt::Debug,
    B: Balance,
{
    // order
    let mut prev: Option<&S::K> = None;
    for (k, _) in crate::iter::Iter::new(t) {
        if let Some(p) = prev {
            if S::compare(p, k) != Ordering::Less {
                return Err("keys not strictly increasing".into());
            }
        }
        prev = Some(k);
    }
    // size / aug / balance / fill
    rec(t, true).map(|_| ())
}

fn rec<S, B>(t: &Tree<S, B>, is_root: bool) -> Result<(usize, Option<S::A>), String>
where
    S: AugSpec,
    S::A: PartialEq + std::fmt::Debug,
    B: Balance,
{
    let n: &Node<S, B> = match t.as_deref() {
        None => return Ok((0, None)),
        Some(n) => n,
    };
    let cap = B::LEAF_CAP;
    match n {
        Node::Leaf(l) => {
            let len = l.entries().len();
            if len == 0 {
                return Err("empty leaf block".into());
            }
            if cap <= 1 && len != 1 {
                return Err(format!("leaf block of {len} entries with LEAF_CAP 1"));
            }
            if cap >= 2 {
                if len > cap {
                    return Err(format!("leaf block overfull: {len} > cap {cap}"));
                }
                if !is_root && len < cap / 2 {
                    return Err(format!(
                        "non-root leaf block underfull: {len} < cap/2 = {}",
                        cap / 2
                    ));
                }
            }
            let expect = S::fold_block(l.entries().iter().map(|e| (&e.key, &e.val)));
            if *l.aug() != expect {
                return Err(format!(
                    "leaf augmented value mismatch: stored {:?} != recomputed {:?}",
                    l.aug(),
                    expect
                ));
            }
            if !B::local_ok(n) {
                return Err(format!("{} balance invariant violated at leaf", B::NAME));
            }
            Ok((len, Some(l.aug().clone())))
        }
        Node::Internal(x) => {
            if cap >= 2 && x.size <= cap {
                return Err(format!(
                    "internal node of size {} (<= cap {cap}) should be a leaf block",
                    x.size
                ));
            }
            let (ls, laug) = rec(&x.left, false)?;
            let (rs, raug) = rec(&x.right, false)?;
            if x.size != ls + rs + 1 {
                return Err(format!(
                    "size mismatch: stored {} != {}",
                    x.size,
                    ls + rs + 1
                ));
            }
            let mid = S::base(&x.key, &x.val);
            let expect = match (laug, raug) {
                (None, None) => mid,
                (Some(l), None) => S::combine(&l, &mid),
                (None, Some(r)) => S::combine(&mid, &r),
                (Some(l), Some(r)) => S::combine(&l, &S::combine(&mid, &r)),
            };
            if x.aug != expect {
                return Err(format!(
                    "augmented value mismatch: stored {:?} != recomputed {:?}",
                    x.aug, expect
                ));
            }
            if !B::local_ok(n) {
                return Err(format!("{} balance invariant violated", B::NAME));
            }
            Ok((x.size, Some(x.aug.clone())))
        }
    }
}
