//! Snapshot-isolation concurrency (§4, "Concurrency").
//!
//! PAM's concurrency story: *"any number of users can concurrently access
//! and update their local copy (snapshot) of any map ... Updates to the
//! shared instance of a map can be made atomically by swapping in a new
//! pointer"*. [`SharedMap`] packages exactly that: readers take O(1)
//! snapshots that are never affected by later commits; writers are
//! serialized and swap in a new root. Accumulated updates are best applied
//! in bulk with [`SharedMap::commit`] + `multi_insert`.
//!
//! Every successful commit advances a monotonic **version counter**, which
//! enables optimistic (CAS-style) writers: take a versioned snapshot with
//! [`SharedMap::snapshot_versioned`], compute a new map *outside* any
//! lock, and publish it with [`SharedMap::try_swap`] — retrying on
//! conflict, or in one call via [`SharedMap::commit_cas`]. The `pam-store`
//! group-commit pipeline drives its batch application through this
//! interface so expensive `multi_insert` work never blocks readers.

use crate::balance::{Balance, WeightBalanced};
use crate::map::AugMap;
use crate::spec::AugSpec;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

/// An atomically swappable shared map supporting snapshot isolation.
pub struct SharedMap<S: AugSpec, B: Balance = WeightBalanced> {
    inner: RwLock<AugMap<S, B>>,
    version: AtomicU64,
}

impl<S: AugSpec, B: Balance> SharedMap<S, B> {
    /// Share `map` (at version 0).
    pub fn new(map: AugMap<S, B>) -> Self {
        SharedMap {
            inner: RwLock::new(map),
            version: AtomicU64::new(0),
        }
    }

    /// Take an O(1) snapshot. The snapshot is fully persistent: it never
    /// observes later commits, and modifying it locally never disturbs
    /// the shared instance or other snapshots.
    pub fn snapshot(&self) -> AugMap<S, B> {
        self.inner.read().clone()
    }

    /// Take an O(1) snapshot together with the version it corresponds to.
    /// The pair is consistent: no commit can interleave between reading
    /// the map and reading the counter.
    pub fn snapshot_versioned(&self) -> (AugMap<S, B>, u64) {
        let guard = self.inner.read();
        let map = guard.clone();
        // still under the read lock: writers bump the counter only while
        // holding the write lock, so this read is consistent with `map`.
        let v = self.version.load(Ordering::Acquire);
        (map, v)
    }

    /// The version of the current shared instance. Starts at 0 and
    /// increases by exactly 1 per successful commit/swap.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Atomically replace the shared map with `f(current)`. Writers are
    /// sequentialized (as in the paper); readers are never blocked by the
    /// computation of `f` *before* the commit — only the swap takes the
    /// write lock if `f` is cheap. For expensive transformations, compute
    /// on a snapshot and publish with [`SharedMap::try_swap`] /
    /// [`SharedMap::commit_cas`] instead, so the write lock is held only
    /// for the pointer swap.
    pub fn commit(&self, f: impl FnOnce(AugMap<S, B>) -> AugMap<S, B>) {
        let mut guard = self.inner.write();
        let current = std::mem::take(&mut *guard);
        *guard = f(current);
        self.version.fetch_add(1, Ordering::AcqRel);
    }

    /// Optimistic publish: install `new` if and only if the shared map is
    /// still at version `expected` (i.e. no commit has happened since the
    /// snapshot `new` was computed from).
    ///
    /// On success returns the new version; on conflict returns the
    /// *current* versioned snapshot so the caller can rebase and retry.
    /// The write lock is held only for the O(1) pointer swap — never for
    /// the computation of `new`.
    pub fn try_swap(&self, expected: u64, new: AugMap<S, B>) -> Result<u64, (AugMap<S, B>, u64)> {
        let mut guard = self.inner.write();
        let cur = self.version.load(Ordering::Acquire);
        if cur != expected {
            return Err((guard.clone(), cur));
        }
        *guard = new;
        let v = cur + 1;
        self.version.store(v, Ordering::Release);
        Ok(v)
    }

    /// Compute-and-swap with retry: repeatedly apply `f` to the latest
    /// snapshot (outside any lock) and [`SharedMap::try_swap`] the result
    /// until no concurrent commit intervenes. Returns the committed
    /// version and the number of retries (0 = first attempt won).
    ///
    /// This is the paper's "swap in a new pointer" discipline extended to
    /// many concurrent writers: each writer's O(m log(n/m + 1)) batch work
    /// happens on its own snapshot, and only the O(1) swap serializes.
    pub fn commit_cas(&self, mut f: impl FnMut(AugMap<S, B>) -> AugMap<S, B>) -> (u64, u64) {
        let (mut snap, mut ver) = self.snapshot_versioned();
        let mut retries = 0u64;
        loop {
            let next = f(snap);
            match self.try_swap(ver, next) {
                Ok(v) => return (v, retries),
                Err((cur, curv)) => {
                    retries += 1;
                    snap = cur;
                    ver = curv;
                }
            }
        }
    }

    /// Current size (takes a read lock briefly).
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Is the shared map empty?
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl<S: AugSpec, B: Balance> Default for SharedMap<S, B> {
    fn default() -> Self {
        Self::new(AugMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SumAug;
    use std::sync::Arc;

    type M = SharedMap<SumAug<u64, u64>>;

    #[test]
    fn snapshots_are_isolated() {
        let shared = M::default();
        shared.commit(|mut m| {
            m.insert(1, 10);
            m
        });
        let snap = shared.snapshot();
        shared.commit(|mut m| {
            m.insert(2, 20);
            m
        });
        // the earlier snapshot does not see the later commit
        assert_eq!(snap.len(), 1);
        assert_eq!(shared.snapshot().len(), 2);
    }

    #[test]
    fn version_counts_commits() {
        let shared = M::default();
        assert_eq!(shared.version(), 0);
        shared.commit(|m| m);
        shared.commit(|m| m);
        assert_eq!(shared.version(), 2);
        let (_, v) = shared.snapshot_versioned();
        assert_eq!(v, 2);
    }

    #[test]
    fn try_swap_detects_conflicts() {
        let shared = M::default();
        let (snap, v) = shared.snapshot_versioned();
        // a commit races in between
        shared.commit(|mut m| {
            m.insert(7, 7);
            m
        });
        let mut stale = snap;
        stale.insert(1, 1);
        let err = shared.try_swap(v, stale);
        let (cur, curv) = err.expect_err("stale swap must fail");
        assert_eq!(curv, 1);
        assert_eq!(cur.len(), 1); // the racing commit's state, not ours
        assert_eq!(shared.snapshot().get(&7), Some(&7));
        // rebased swap succeeds
        let mut rebased = cur;
        rebased.insert(1, 1);
        assert_eq!(shared.try_swap(curv, rebased), Ok(2));
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn commit_cas_under_contention_loses_no_updates() {
        let shared = Arc::new(M::default());
        let threads = 8;
        let per = 200u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = t * per + i;
                        s.commit_cas(|mut m| {
                            m.insert(k, 1);
                            m
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(shared.len(), (threads * per) as usize);
        assert_eq!(shared.snapshot().aug_val(), threads * per);
        assert_eq!(shared.version(), threads * per);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let shared = Arc::new(M::default());
        shared.commit(|mut m| {
            m.multi_insert((0..1000u64).map(|i| (i, i)).collect());
            m
        });
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let snap = s.snapshot();
                    // local modifications never affect the shared copy
                    let mut local = snap.clone();
                    local.insert(99_999, 1);
                    assert!(snap.len() == 1000 || snap.len() == 1001);
                }
            }));
        }
        let w = shared.clone();
        let writer = std::thread::spawn(move || {
            w.commit(|mut m| {
                m.insert(5000, 1);
                m
            });
        });
        for h in handles {
            h.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(shared.len(), 1001);
    }
}
