//! Snapshot-isolation concurrency (§4, "Concurrency").
//!
//! PAM's concurrency story: *"any number of users can concurrently access
//! and update their local copy (snapshot) of any map ... Updates to the
//! shared instance of a map can be made atomically by swapping in a new
//! pointer"*. [`SharedMap`] packages exactly that: readers take O(1)
//! snapshots that are never affected by later commits; writers are
//! serialized and swap in a new root. Accumulated updates are best applied
//! in bulk with [`SharedMap::commit`] + `multi_insert`.

use crate::balance::{Balance, WeightBalanced};
use crate::map::AugMap;
use crate::spec::AugSpec;
use parking_lot::RwLock;

/// An atomically swappable shared map supporting snapshot isolation.
pub struct SharedMap<S: AugSpec, B: Balance = WeightBalanced> {
    inner: RwLock<AugMap<S, B>>,
}

impl<S: AugSpec, B: Balance> SharedMap<S, B> {
    /// Share `map`.
    pub fn new(map: AugMap<S, B>) -> Self {
        SharedMap {
            inner: RwLock::new(map),
        }
    }

    /// Take an O(1) snapshot. The snapshot is fully persistent: it never
    /// observes later commits, and modifying it locally never disturbs
    /// the shared instance or other snapshots.
    pub fn snapshot(&self) -> AugMap<S, B> {
        self.inner.read().clone()
    }

    /// Atomically replace the shared map with `f(current)`. Writers are
    /// sequentialized (as in the paper); readers are never blocked by the
    /// computation of `f` *before* the commit — only the swap takes the
    /// write lock if `f` is cheap. For expensive transformations, compute
    /// on a snapshot and use [`SharedMap::compare_and_swap`]-style retry
    /// via this method's closure receiving the latest value.
    pub fn commit(&self, f: impl FnOnce(AugMap<S, B>) -> AugMap<S, B>) {
        let mut guard = self.inner.write();
        let current = std::mem::take(&mut *guard);
        *guard = f(current);
    }

    /// Current size (takes a read lock briefly).
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Is the shared map empty?
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl<S: AugSpec, B: Balance> Default for SharedMap<S, B> {
    fn default() -> Self {
        Self::new(AugMap::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SumAug;
    use std::sync::Arc;

    type M = SharedMap<SumAug<u64, u64>>;

    #[test]
    fn snapshots_are_isolated() {
        let shared = M::default();
        shared.commit(|mut m| {
            m.insert(1, 10);
            m
        });
        let snap = shared.snapshot();
        shared.commit(|mut m| {
            m.insert(2, 20);
            m
        });
        // the earlier snapshot does not see the later commit
        assert_eq!(snap.len(), 1);
        assert_eq!(shared.snapshot().len(), 2);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        let shared = Arc::new(M::default());
        shared.commit(|mut m| {
            m.multi_insert((0..1000u64).map(|i| (i, i)).collect());
            m
        });
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = shared.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let snap = s.snapshot();
                    // local modifications never affect the shared copy
                    let mut local = snap.clone();
                    local.insert(99_999, 1);
                    assert!(snap.len() == 1000 || snap.len() == 1001);
                }
            }));
        }
        let w = shared.clone();
        let writer = std::thread::spawn(move || {
            w.commit(|mut m| {
                m.insert(5000, 1);
                m
            });
        });
        for h in handles {
            h.join().unwrap();
        }
        writer.join().unwrap();
        assert_eq!(shared.len(), 1001);
    }
}
