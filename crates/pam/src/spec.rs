//! The augmented-map *specification*: the paper's
//! `AM(K, <, V, A, g, f, I)` tuple as a Rust trait.
//!
//! An [`AugSpec`] fixes, at the type level:
//!
//! * the key type `K` and its total order ([`AugSpec::compare`], the paper's `<`),
//! * the value type `V`,
//! * the augmented-value type `A`,
//! * the base function `g : K × V → A` ([`AugSpec::base`]),
//! * the combine function `f : A × A → A` ([`AugSpec::combine`]), and
//! * the identity `I` of `f` ([`AugSpec::identity`]),
//!
//! where `(A, f, I)` must be a monoid. The augmented value of a map
//! `{(k1,v1), ..., (kn,vn)}` is `f(g(k1,v1), ..., g(kn,vn))`.
//!
//! This mirrors the C++ `entry` structs of the PAM library (Figure 3 of the
//! paper) one-for-one: `key_t → K`, `val_t → V`, `aug_t → A`, `comp →
//! compare`, `base → base`, `combine → combine`, `identity → identity`.
//!
//! Ready-made specs are provided for the common cases: [`NoAug`] (a plain
//! ordered map), [`SumAug`] (Equation 1 of the paper), [`MaxAug`] and
//! [`MinAug`].

use std::cmp::Ordering;
use std::marker::PhantomData;

/// Specification of an augmented map type (the paper's `AM(K,V,A,<,g,f,I)`).
///
/// Implementations are zero-sized "tag" types; all methods are associated
/// functions so they compile to direct calls with no virtual dispatch —
/// matching PAM's use of static member functions in C++ templates ("these
/// functions actually do not take any real space", Fig. 5).
pub trait AugSpec: 'static {
    /// Key type.
    type K: Clone + Send + Sync + 'static;
    /// Value type.
    type V: Clone + Send + Sync + 'static;
    /// Augmented-value type.
    type A: Clone + Send + Sync + 'static;

    /// Total order on keys (the paper's `<`).
    fn compare(a: &Self::K, b: &Self::K) -> Ordering;

    /// Identity `I` of the combine monoid.
    fn identity() -> Self::A;

    /// Base function `g(k, v)`: the augmented value of a single entry.
    fn base(k: &Self::K, v: &Self::V) -> Self::A;

    /// Combine function `f(a, b)`. Must be associative with identity
    /// [`AugSpec::identity`].
    fn combine(a: &Self::A, b: &Self::A) -> Self::A;

    /// `f(l, f(m, r))` — the augmented value of a node from its left
    /// subtree sum `l`, own entry `m = g(k,v)`, and right subtree sum `r`.
    /// "It takes two applications of f since we have to combine three
    /// values" (§4). Overridable for specs with a cheaper 3-way fuse.
    #[inline]
    fn combine3(l: &Self::A, m: Self::A, r: &Self::A) -> Self::A {
        Self::combine(l, &Self::combine(&m, r))
    }

    /// Fold `f(g(k1,v1), ..., g(kn,vn))` over a sorted leaf *block* — the
    /// per-block form of the monoid used by blocked leaves (the identity
    /// for an empty block, though leaf blocks are never empty).
    /// Overridable for specs with a cheaper whole-block fold (e.g. a SIMD
    /// sum); the default right-folds `combine` over the bases.
    #[inline]
    fn fold_block<'a>(items: impl Iterator<Item = (&'a Self::K, &'a Self::V)>) -> Self::A
    where
        Self::K: 'a,
        Self::V: 'a,
    {
        let mut acc: Option<Self::A> = None;
        for (k, v) in items {
            let b = Self::base(k, v);
            acc = Some(match acc {
                None => b,
                Some(a) => Self::combine(&a, &b),
            });
        }
        acc.unwrap_or_else(Self::identity)
    }
}

// ---------------------------------------------------------------------------
// Value-monoid helper traits for the ready-made specs
// ---------------------------------------------------------------------------

/// Types with an additive monoid structure (used by [`SumAug`]).
pub trait Addable: Clone + Send + Sync + 'static {
    /// The additive identity.
    fn zero() -> Self;
    /// Associative addition.
    fn add(&self, other: &Self) -> Self;
}

/// Types with a max semilattice and a bottom element (used by [`MaxAug`]).
pub trait Maxable: Clone + Send + Sync + 'static {
    /// An element `⊥` with `max(⊥, x) = x` for all representable `x`.
    fn bottom() -> Self;
    /// The larger of the two values.
    fn max2(a: &Self, b: &Self) -> Self;
}

/// Types with a min semilattice and a top element (used by [`MinAug`]).
pub trait Minable: Clone + Send + Sync + 'static {
    /// An element `⊤` with `min(⊤, x) = x` for all representable `x`.
    fn top() -> Self;
    /// The smaller of the two values.
    fn min2(a: &Self, b: &Self) -> Self;
}

macro_rules! impl_numeric_monoids {
    ($($t:ty),*) => {$(
        impl Addable for $t {
            #[inline] fn zero() -> Self { 0 as $t }
            // Wrapping: sums of random 64-bit values are expected to wrap
            // (as in the paper's C++), and modular addition is still a
            // monoid.
            #[inline] fn add(&self, other: &Self) -> Self { self.wrapping_add(*other) }
        }
        impl Maxable for $t {
            #[inline] fn bottom() -> Self { <$t>::MIN }
            #[inline] fn max2(a: &Self, b: &Self) -> Self { if a >= b { *a } else { *b } }
        }
        impl Minable for $t {
            #[inline] fn top() -> Self { <$t>::MAX }
            #[inline] fn min2(a: &Self, b: &Self) -> Self { if a <= b { *a } else { *b } }
        }
    )*};
}
impl_numeric_monoids!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float_monoids {
    ($($t:ty),*) => {$(
        impl Addable for $t {
            #[inline] fn zero() -> Self { 0.0 }
            #[inline] fn add(&self, other: &Self) -> Self { self + other }
        }
        impl Maxable for $t {
            #[inline] fn bottom() -> Self { <$t>::NEG_INFINITY }
            #[inline] fn max2(a: &Self, b: &Self) -> Self { if a >= b { *a } else { *b } }
        }
        impl Minable for $t {
            #[inline] fn top() -> Self { <$t>::INFINITY }
            #[inline] fn min2(a: &Self, b: &Self) -> Self { if a <= b { *a } else { *b } }
        }
    )*};
}
impl_float_monoids!(f32, f64);

// ---------------------------------------------------------------------------
// Ready-made specs
// ---------------------------------------------------------------------------

/// Plain (un-augmented) ordered map: `A = ()`, `f` and `g` trivial.
///
/// This is the spec used for the paper's "non-augmented PAM" rows in
/// Table 3 — the tree stores a zero-sized augmented value, so nodes are
/// strictly smaller (see `stats::node_size`).
pub struct NoAug<K, V>(PhantomData<fn(K, V)>);

impl<K, V> AugSpec for NoAug<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    type K = K;
    type V = V;
    type A = ();
    #[inline]
    fn compare(a: &K, b: &K) -> Ordering {
        a.cmp(b)
    }
    #[inline]
    fn identity() {}
    #[inline]
    fn base(_: &K, _: &V) {}
    #[inline]
    fn combine(_: &(), _: &()) {}
}

/// Sum augmentation: `A = V`, `g(k,v) = v`, `f = +` — Equation 1 of the
/// paper (`AM(Z, <, Z, Z, (k,v)→v, +, 0)`).
pub struct SumAug<K, V>(PhantomData<fn(K, V)>);

impl<K, V> AugSpec for SumAug<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Addable,
{
    type K = K;
    type V = V;
    type A = V;
    #[inline]
    fn compare(a: &K, b: &K) -> Ordering {
        a.cmp(b)
    }
    #[inline]
    fn identity() -> V {
        V::zero()
    }
    #[inline]
    fn base(_: &K, v: &V) -> V {
        v.clone()
    }
    #[inline]
    fn combine(a: &V, b: &V) -> V {
        a.add(b)
    }
}

/// Max augmentation: `A = V`, `g(k,v) = v`, `f = max` — the spec used by
/// interval trees (§5.1) and the inner maps of the inverted index (§5.3).
pub struct MaxAug<K, V>(PhantomData<fn(K, V)>);

impl<K, V> AugSpec for MaxAug<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Maxable + PartialOrd,
{
    type K = K;
    type V = V;
    type A = V;
    #[inline]
    fn compare(a: &K, b: &K) -> Ordering {
        a.cmp(b)
    }
    #[inline]
    fn identity() -> V {
        V::bottom()
    }
    #[inline]
    fn base(_: &K, v: &V) -> V {
        v.clone()
    }
    #[inline]
    fn combine(a: &V, b: &V) -> V {
        V::max2(a, b)
    }
}

/// Min augmentation: `A = V`, `g(k,v) = v`, `f = min`.
pub struct MinAug<K, V>(PhantomData<fn(K, V)>);

impl<K, V> AugSpec for MinAug<K, V>
where
    K: Ord + Clone + Send + Sync + 'static,
    V: Minable + PartialOrd,
{
    type K = K;
    type V = V;
    type A = V;
    #[inline]
    fn compare(a: &K, b: &K) -> Ordering {
        a.cmp(b)
    }
    #[inline]
    fn identity() -> V {
        V::top()
    }
    #[inline]
    fn base(_: &K, v: &V) -> V {
        v.clone()
    }
    #[inline]
    fn combine(a: &V, b: &V) -> V {
        V::min2(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_spec_monoid_laws() {
        type S = SumAug<u64, u64>;
        let (a, b, c) = (3u64, 5u64, 7u64);
        // associativity
        assert_eq!(
            S::combine(&S::combine(&a, &b), &c),
            S::combine(&a, &S::combine(&b, &c))
        );
        // identity
        assert_eq!(S::combine(&S::identity(), &a), a);
        assert_eq!(S::combine(&a, &S::identity()), a);
    }

    #[test]
    fn max_spec_monoid_laws() {
        type S = MaxAug<u64, i64>;
        let (a, b) = (-4i64, 9i64);
        assert_eq!(S::combine(&a, &b), 9);
        assert_eq!(S::combine(&S::identity(), &a), a);
    }

    #[test]
    fn min_spec_identity() {
        type S = MinAug<u32, u32>;
        assert_eq!(S::combine(&S::identity(), &17), 17);
        assert_eq!(S::combine(&4, &17), 4);
    }

    #[test]
    fn combine3_matches_two_applications() {
        type S = SumAug<u64, u64>;
        assert_eq!(S::combine3(&1, 2, &3), 6);
    }

    #[test]
    fn fold_block_matches_pairwise_combine() {
        type S = SumAug<u64, u64>;
        let block: Vec<(u64, u64)> = vec![(1, 10), (2, 20), (3, 30)];
        let folded = S::fold_block(block.iter().map(|(k, v)| (k, v)));
        assert_eq!(folded, 60);
        let empty = S::fold_block(std::iter::empty::<(&u64, &u64)>());
        assert_eq!(empty, S::identity());
    }

    #[test]
    fn float_monoids() {
        assert_eq!(f64::max2(&f64::bottom(), &-1e300), -1e300);
        assert_eq!(f64::min2(&f64::top(), &1e300), 1e300);
        assert_eq!(f64::zero().add(&2.5), 2.5);
    }

    #[test]
    fn noaug_is_zero_sized() {
        assert_eq!(std::mem::size_of::<<NoAug<u64, u64> as AugSpec>::A>(), 0);
    }
}
