//! [`AugMap`] — the ergonomic, persistent augmented map.
//!
//! A thin wrapper over a [`Tree`] root. `Clone` is O(1) and yields an
//! independent snapshot (persistence); all bulk operations run in
//! parallel internally. See the crate docs for the full tour.

use crate::balance::{Balance, WeightBalanced};
use crate::iter::Iter;
use crate::node::{self, Tree};
use crate::ops;
use crate::spec::AugSpec;

/// A parallel, persistent, augmented ordered map with specification `S`
/// and balancing scheme `B` (default: weight-balanced, as in PAM).
pub struct AugMap<S: AugSpec, B: Balance = WeightBalanced> {
    root: Tree<S, B>,
}

impl<S: AugSpec, B: Balance> Clone for AugMap<S, B> {
    /// O(1): snapshots share all nodes until either side is modified.
    fn clone(&self) -> Self {
        AugMap {
            root: self.root.clone(),
        }
    }
}

impl<S: AugSpec, B: Balance> Default for AugMap<S, B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: AugSpec, B: Balance> std::fmt::Debug for AugMap<S, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AugMap<{}>{{ len: {} }}", B::NAME, self.len())
    }
}

impl<S: AugSpec, B: Balance> AugMap<S, B> {
    // -- constructors -----------------------------------------------------

    /// The empty map.
    pub fn new() -> Self {
        AugMap { root: None }
    }

    /// A map with a single entry.
    pub fn singleton(key: S::K, val: S::V) -> Self {
        AugMap {
            root: crate::balance::singleton::<S, B>(key, val),
        }
    }

    /// Build from unsorted pairs; on duplicate keys the **last** value
    /// wins (like repeated insertion).
    pub fn build(items: Vec<(S::K, S::V)>) -> Self {
        Self::build_with(items, |_old, new| new.clone())
    }

    /// Build from unsorted pairs, merging duplicate-key values
    /// left-to-right with `combine` — the paper's `build(S, h)`.
    ///
    /// ```
    /// use pam::{AugMap, SumAug};
    /// let m: AugMap<SumAug<u32, u64>> =
    ///     AugMap::build_with(vec![(1, 5), (2, 1), (1, 7)], |a, b| a + b);
    /// assert_eq!(m.get(&1), Some(&12)); // duplicates combined
    /// assert_eq!(m.aug_val(), 13);
    /// ```
    pub fn build_with(
        items: Vec<(S::K, S::V)>,
        combine: impl Fn(&S::V, &S::V) -> S::V + Sync,
    ) -> Self {
        AugMap {
            root: ops::build::<S, B, _>(items, &combine),
        }
    }

    /// Build from a slice already sorted by key with distinct keys
    /// (O(n) work, O(log n) span).
    pub fn from_sorted_distinct(items: &[(S::K, S::V)]) -> Self {
        AugMap {
            root: ops::from_sorted_distinct::<S, B>(items),
        }
    }

    /// Wrap a raw tree (advanced; used by the stats helpers and tests).
    pub fn from_root(root: Tree<S, B>) -> Self {
        AugMap { root }
    }

    // -- size & point queries ---------------------------------------------

    /// Number of entries.
    pub fn len(&self) -> usize {
        node::size(&self.root)
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The value at `key`, if present. O(log n).
    pub fn get(&self, key: &S::K) -> Option<&S::V> {
        ops::find(&self.root, key)
    }

    /// Is `key` present? O(log n).
    pub fn contains_key(&self, key: &S::K) -> bool {
        ops::contains(&self.root, key)
    }

    /// The smallest entry.
    pub fn first(&self) -> Option<(&S::K, &S::V)> {
        ops::first(&self.root)
    }

    /// The largest entry.
    pub fn last(&self) -> Option<(&S::K, &S::V)> {
        ops::last(&self.root)
    }

    /// Largest entry with key strictly less than `key`.
    pub fn previous(&self, key: &S::K) -> Option<(&S::K, &S::V)> {
        ops::previous(&self.root, key)
    }

    /// Smallest entry with key strictly greater than `key`.
    pub fn next(&self, key: &S::K) -> Option<(&S::K, &S::V)> {
        ops::next(&self.root, key)
    }

    /// Number of entries with keys strictly less than `key`.
    pub fn rank(&self, key: &S::K) -> usize {
        ops::rank(&self.root, key)
    }

    /// The `i`-th smallest entry (0-based).
    pub fn select(&self, i: usize) -> Option<(&S::K, &S::V)> {
        ops::select(&self.root, i)
    }

    // -- point updates ----------------------------------------------------

    /// Insert, replacing any existing value. O(log n).
    pub fn insert(&mut self, key: S::K, val: S::V) {
        self.insert_with(key, val, |_old, new| new.clone());
    }

    /// Insert; when the key exists the stored value becomes
    /// `combine(old, new)`. O(log n).
    pub fn insert_with(&mut self, key: S::K, val: S::V, combine: impl Fn(&S::V, &S::V) -> S::V) {
        let root = self.root.take();
        self.root = ops::insert::<S, B, _>(root, key, val, &combine);
    }

    /// Remove the entry at `key` (no-op if absent). O(log n).
    pub fn remove(&mut self, key: &S::K) {
        let root = self.root.take();
        self.root = ops::delete(root, key);
    }

    /// Update the value at `key`: `f(&old)` returning `None` removes the
    /// entry, `Some(v)` replaces it. No-op if absent. O(log n).
    pub fn update(&mut self, key: &S::K, f: impl Fn(&S::V) -> Option<S::V>) {
        let root = self.root.take();
        self.root = ops::update::<S, B, _>(root, key, &f);
    }

    // -- bulk operations ---------------------------------------------------

    /// Union; on overlapping keys the value from `other` wins.
    pub fn union(self, other: Self) -> Self {
        self.union_with(other, |_a, b| b.clone())
    }

    /// Union; on overlapping keys the result is `combine(self_v, other_v)`.
    /// O(m log(n/m + 1)) work, polylog span.
    ///
    /// ```
    /// use pam::{AugMap, SumAug};
    /// let a: AugMap<SumAug<u32, u64>> = AugMap::build(vec![(1, 10), (2, 20)]);
    /// let b: AugMap<SumAug<u32, u64>> = AugMap::build(vec![(2, 1), (3, 30)]);
    /// let u = a.union_with(b, |x, y| x + y);
    /// assert_eq!(u.to_vec(), vec![(1, 10), (2, 21), (3, 30)]);
    /// ```
    pub fn union_with(self, other: Self, combine: impl Fn(&S::V, &S::V) -> S::V + Sync) -> Self {
        AugMap {
            root: ops::union::<S, B, _>(self.root, other.root, &combine),
        }
    }

    /// Intersection; values combined with `combine(self_v, other_v)`.
    pub fn intersect_with(
        self,
        other: Self,
        combine: impl Fn(&S::V, &S::V) -> S::V + Sync,
    ) -> Self {
        AugMap {
            root: ops::intersect::<S, B, _>(self.root, other.root, &combine),
        }
    }

    /// The entries of `self` whose keys do not occur in `other`.
    pub fn difference(self, other: Self) -> Self {
        AugMap {
            root: ops::difference(self.root, other.root),
        }
    }

    /// Keep the entries satisfying `pred` (parallel; linear work).
    pub fn filter(self, pred: impl Fn(&S::K, &S::V) -> bool + Sync) -> Self {
        AugMap {
            root: ops::filter::<S, B, _>(self.root, &pred),
        }
    }

    /// Bulk-insert, replacing existing values.
    pub fn multi_insert(&mut self, batch: Vec<(S::K, S::V)>) {
        self.multi_insert_with(batch, |_old, new| new.clone());
    }

    /// Bulk-insert with `combine(old, new)` on existing keys.
    pub fn multi_insert_with(
        &mut self,
        batch: Vec<(S::K, S::V)>,
        combine: impl Fn(&S::V, &S::V) -> S::V + Sync,
    ) {
        let root = self.root.take();
        self.root = ops::multi_insert::<S, B, _>(root, batch, &combine);
    }

    /// Bulk-delete a set of keys.
    pub fn multi_delete(&mut self, keys: Vec<S::K>) {
        let root = self.root.take();
        self.root = ops::multi_delete::<S, B>(root, keys);
    }

    // -- range extraction ---------------------------------------------------

    /// The sub-map of keys `<= key` (persistent: shares nodes with `self`).
    pub fn up_to(&self, key: &S::K) -> Self {
        AugMap {
            root: ops::up_to(self.root.clone(), key),
        }
    }

    /// The sub-map of keys `>= key`.
    pub fn down_to(&self, key: &S::K) -> Self {
        AugMap {
            root: ops::down_to(self.root.clone(), key),
        }
    }

    /// The sub-map of keys in `[lo, hi]` (inclusive).
    pub fn range(&self, lo: &S::K, hi: &S::K) -> Self {
        AugMap {
            root: ops::range(self.root.clone(), lo, hi),
        }
    }

    /// Split at rank: the first `i` entries and the remaining ones, as
    /// two persistent maps. O(log n).
    pub fn split_rank(&self, i: usize) -> (Self, Self) {
        let (l, r) = ops::split_rank(self.root.clone(), i);
        (AugMap { root: l }, AugMap { root: r })
    }

    /// Split around `key`: entries below, the value at `key` (if any),
    /// and entries above. O(log n).
    pub fn split(&self, key: &S::K) -> (Self, Option<S::V>, Self) {
        let (l, v, r) = ops::split(self.root.clone(), key);
        (AugMap { root: l }, v, AugMap { root: r })
    }

    // -- augmented queries ---------------------------------------------------

    /// The augmented value of the whole map: `f(g(k1,v1), ..., g(kn,vn))`.
    /// O(1) — this is the paper's `augVal`.
    pub fn aug_val(&self) -> S::A {
        node::aug_val(&self.root)
    }

    /// Augmented value over keys `<= key`. O(log n).
    pub fn aug_left(&self, key: &S::K) -> S::A {
        ops::aug_left(&self.root, key)
    }

    /// Augmented value over keys `>= key`. O(log n).
    pub fn aug_right(&self, key: &S::K) -> S::A {
        ops::aug_right(&self.root, key)
    }

    /// Augmented value over keys in `[lo, hi]`. O(log n).
    ///
    /// ```
    /// use pam::{AugMap, MaxAug};
    /// let m: AugMap<MaxAug<u32, i64>> =
    ///     AugMap::build(vec![(1, 5), (2, 99), (3, 7), (4, 1)]);
    /// assert_eq!(m.aug_range(&3, &4), 7);   // max value among keys 3..=4
    /// assert_eq!(m.aug_range(&9, &10), i64::MIN); // empty range -> identity
    /// ```
    pub fn aug_range(&self, lo: &S::K, hi: &S::K) -> S::A {
        ops::aug_range(&self.root, lo, hi)
    }

    /// Project-and-reduce the augmented values of the canonical subtrees
    /// covering `[lo, hi]`: the paper's `augProject(g', f', m, k1, k2)`.
    /// Requires `f'(g'(a), g'(b)) = g'(f(a, b))`.
    pub fn aug_project<T>(
        &self,
        lo: &S::K,
        hi: &S::K,
        project: impl Fn(&S::A) -> T,
        reduce: impl Fn(T, T) -> T,
        id: T,
    ) -> T {
        ops::aug_project(&self.root, lo, hi, &project, &reduce, id)
    }

    /// Filter using a predicate on *augmented values*; requires
    /// `h(a) ∨ h(b) ⇔ h(f(a, b))`. O(k log(n/k + 1)) work for k results.
    ///
    /// ```
    /// use pam::{AugMap, MaxAug};
    /// let m: AugMap<MaxAug<u32, u64>> =
    ///     AugMap::build((0..1000u32).map(|i| (i, (i as u64 * 37) % 1000)).collect());
    /// let best = m.aug_filter(|&a| a >= 990); // prunes low-max subtrees
    /// assert!(best.iter().all(|(_, &v)| v >= 990));
    /// assert_eq!(best.len(), 10);
    /// ```
    pub fn aug_filter(&self, h: impl Fn(&S::A) -> bool + Sync) -> Self {
        AugMap {
            root: ops::aug_filter::<S, B, _>(self.root.clone(), &h),
        }
    }

    /// [`AugMap::aug_filter`] plus the paper's footnote-3 optimization:
    /// subtrees whose augmented value satisfies `h_all` (meaning *every*
    /// entry matches) are kept whole, with zero copying.
    pub fn aug_filter_with_all(
        &self,
        h_any: impl Fn(&S::A) -> bool + Sync,
        h_all: impl Fn(&S::A) -> bool + Sync,
    ) -> Self {
        AugMap {
            root: ops::aug_filter_with_all::<S, B, _, _>(self.root.clone(), &h_any, &h_all),
        }
    }

    /// The `k` highest-scoring entries, best-first, guided by the
    /// augmentation. `bound(aug)` must upper-bound `score(k, v)` over the
    /// subtree (automatic for max augmentations). O((k + log n) log k).
    pub fn top_k_by<W: Ord>(
        &self,
        k: usize,
        bound: impl Fn(&S::A) -> W,
        score: impl Fn(&S::K, &S::V) -> W,
    ) -> Vec<(&S::K, &S::V)> {
        ops::top_k_by(&self.root, k, bound, score)
    }

    /// Filter-and-transform into a new spec in one pass: entries mapped
    /// to `None` are dropped.
    pub fn filter_map_values<S2: AugSpec<K = S::K>>(
        &self,
        f: impl Fn(&S::K, &S::V) -> Option<S2::V> + Sync,
    ) -> AugMap<S2, B> {
        AugMap {
            root: ops::filter_map_values::<S, S2, B, _>(&self.root, &f),
        }
    }

    // -- traversal -----------------------------------------------------------

    /// Borrowing in-order iterator.
    pub fn iter(&self) -> Iter<'_, S, B> {
        Iter::new(&self.root)
    }

    /// Borrowing iterator over the entries with keys in `[lo, hi]`,
    /// without materializing a sub-map.
    ///
    /// ```
    /// use pam::{AugMap, SumAug};
    /// let m: AugMap<SumAug<u32, u32>> =
    ///     AugMap::build((0..100).map(|i| (i, i)).collect());
    /// let keys: Vec<u32> = m.iter_range(&10, &13).map(|(&k, _)| k).collect();
    /// assert_eq!(keys, vec![10, 11, 12, 13]);
    /// ```
    pub fn iter_range<'a>(
        &'a self,
        lo: &'a S::K,
        hi: &'a S::K,
    ) -> crate::iter::RangeIter<'a, S, B> {
        crate::iter::RangeIter::new(&self.root, lo, hi)
    }

    /// A [`Cursor`](crate::cursor::Cursor) positioned at the smallest
    /// key. Advancing streams block-to-block (one slice step inside a
    /// leaf) instead of re-descending from the root; because maps are
    /// persistent the cursor pins this snapshot even if clones mutate.
    pub fn cursor(&self) -> crate::cursor::Cursor<'_, S, B> {
        crate::cursor::Cursor::first(&self.root)
    }

    /// A [`Cursor`](crate::cursor::Cursor) positioned at the smallest
    /// key `>= lo` — one O(log n) descent, then streaming advances.
    pub fn cursor_at(&self, lo: &S::K) -> crate::cursor::Cursor<'_, S, B> {
        crate::cursor::Cursor::seek(&self.root, lo)
    }

    /// Visit every entry in key order, sequentially — the streaming
    /// export path (checkpoint writers, serializers): no intermediate
    /// allocation, unlike [`AugMap::to_vec`], and no per-step iterator
    /// bookkeeping, unlike [`AugMap::iter`].
    ///
    /// ```
    /// use pam::{AugMap, SumAug};
    /// let m: AugMap<SumAug<u32, u32>> = AugMap::build(vec![(2, 20), (1, 10)]);
    /// let mut flat = Vec::new();
    /// m.for_each(|&k, &v| flat.push((k, v)));
    /// assert_eq!(flat, vec![(1, 10), (2, 20)]);
    /// ```
    pub fn for_each(&self, mut f: impl FnMut(&S::K, &S::V)) {
        ops::for_each(&self.root, &mut f);
    }

    /// Apply `map` to every entry and reduce with the associative
    /// `reduce` (identity `id`), in parallel.
    pub fn map_reduce<T: Send>(
        &self,
        map: impl Fn(&S::K, &S::V) -> T + Sync,
        reduce: impl Fn(T, T) -> T + Sync,
        id: T,
    ) -> T {
        ops::map_reduce(&self.root, &map, &reduce, id)
    }

    /// Rebuild with values transformed by `f` under a new spec `S2`
    /// (same key type and order); shape-preserving and parallel.
    pub fn map_values<S2: AugSpec<K = S::K>>(
        &self,
        f: impl Fn(&S::K, &S::V) -> S2::V + Sync,
    ) -> AugMap<S2, B> {
        AugMap {
            root: ops::map_values::<S, S2, B, _>(&self.root, &f),
        }
    }

    /// All entries as a sorted vector (parallel flatten).
    pub fn to_vec(&self) -> Vec<(S::K, S::V)> {
        ops::to_vec(&self.root)
    }

    /// All keys, sorted (parallel).
    pub fn keys(&self) -> Vec<S::K> {
        ops::keys(&self.root)
    }

    /// All values, in key order (parallel).
    pub fn values(&self) -> Vec<S::V> {
        ops::values(&self.root)
    }

    // -- plumbing --------------------------------------------------------------

    /// Borrow the raw root (stats helpers, advanced composition).
    pub fn root(&self) -> &Tree<S, B> {
        &self.root
    }

    /// Unwrap into the raw root.
    pub fn into_root(self) -> Tree<S, B> {
        self.root
    }

    /// Do the two maps share their root node? (O(1); true implies equal.)
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => std::sync::Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Drop the map, releasing large unique subtrees in parallel.
    pub fn par_drop(self) {
        node::par_drop(self.root);
    }

    /// Verify order, size, augmentation, and balance invariants
    /// (test/debug helper).
    pub fn check_invariants(&self) -> Result<(), String>
    where
        S::A: PartialEq + std::fmt::Debug,
    {
        crate::validate::check_tree(&self.root)
    }
}

impl<S: AugSpec, B: Balance> FromIterator<(S::K, S::V)> for AugMap<S, B> {
    fn from_iter<I: IntoIterator<Item = (S::K, S::V)>>(iter: I) -> Self {
        Self::build(iter.into_iter().collect())
    }
}

impl<'a, S: AugSpec, B: Balance> IntoIterator for &'a AugMap<S, B> {
    type Item = (&'a S::K, &'a S::V);
    type IntoIter = Iter<'a, S, B>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<S, B> PartialEq for AugMap<S, B>
where
    S: AugSpec,
    S::K: PartialEq,
    S::V: PartialEq,
    B: Balance,
{
    /// Entry-wise equality (keys and values, in order).
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}
