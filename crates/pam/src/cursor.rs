//! Block-to-block cursor over a tree snapshot.
//!
//! A [`Cursor`] holds a stack of internal nodes plus the not-yet-consumed
//! suffix of the current leaf block. Advancing inside a block is one slice
//! `split_first` — no tree descent — so a full scan touches each internal
//! node once and streams each leaf block linearly. Seeking costs one
//! root-to-leaf descent plus a binary search inside the landing block.
//!
//! Because trees are persistent, a cursor pins a *snapshot*: the borrowed
//! `Tree` cannot change underneath it, and mutations to clones of the map
//! (path copying) never disturb the blocks the cursor walks.

use crate::balance::Balance;
use crate::node::{EntryOwned, InternalNode, Node, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// An in-order streaming position in a tree. Created via
/// [`AugMap::cursor`](crate::AugMap::cursor) /
/// [`AugMap::cursor_at`](crate::AugMap::cursor_at).
pub struct Cursor<'a, S: AugSpec, B: Balance> {
    /// Ancestors whose own entry (and right subtree) are still pending,
    /// innermost last.
    stack: Vec<&'a InternalNode<S, B>>,
    /// Unconsumed suffix of the current leaf block.
    block: &'a [EntryOwned<S, B>],
}

impl<'a, S: AugSpec, B: Balance> Cursor<'a, S, B> {
    /// A cursor positioned at the smallest key.
    pub fn first(t: &'a Tree<S, B>) -> Self {
        let mut c = Cursor {
            stack: Vec::with_capacity(16),
            block: &[],
        };
        c.descend_left(t);
        c
    }

    /// A cursor positioned at the smallest key `>= lo`.
    pub fn seek(t: &'a Tree<S, B>, lo: &S::K) -> Self {
        let mut c = Cursor {
            stack: Vec::with_capacity(16),
            block: &[],
        };
        c.descend_ge(t, lo);
        c
    }

    fn descend_left(&mut self, mut t: &'a Tree<S, B>) {
        while let Some(n) = t.as_deref() {
            match n {
                Node::Leaf(l) => {
                    self.block = l.entries();
                    return;
                }
                Node::Internal(x) => {
                    self.stack.push(x);
                    t = &x.left;
                }
            }
        }
    }

    fn descend_ge(&mut self, mut t: &'a Tree<S, B>, lo: &S::K) {
        while let Some(n) = t.as_deref() {
            match n {
                Node::Leaf(l) => {
                    let idx = l
                        .entries()
                        .partition_point(|e| S::compare(&e.key, lo) == Ordering::Less);
                    self.block = &l.entries()[idx..];
                    return;
                }
                Node::Internal(x) => {
                    if S::compare(&x.key, lo) == Ordering::Less {
                        t = &x.right;
                    } else {
                        self.stack.push(x);
                        t = &x.left;
                    }
                }
            }
        }
    }

    /// The entry under the cursor, without advancing. `None` when
    /// exhausted.
    pub fn peek(&self) -> Option<(&'a S::K, &'a S::V)> {
        if let Some(e) = self.block.first() {
            return Some((&e.key, &e.val));
        }
        self.stack.last().map(|x| (&x.key, &x.val))
    }

    /// Yield the entry under the cursor and move to its successor.
    pub fn advance(&mut self) -> Option<(&'a S::K, &'a S::V)> {
        if let Some((e, rest)) = self.block.split_first() {
            self.block = rest;
            return Some((&e.key, &e.val));
        }
        let x = self.stack.pop()?;
        self.descend_left(&x.right);
        Some((&x.key, &x.val))
    }

    /// True once every entry has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.block.is_empty() && self.stack.is_empty()
    }

    /// Drop the remaining entries; the cursor becomes exhausted.
    pub(crate) fn exhaust(&mut self) {
        self.stack.clear();
        self.block = &[];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    #[test]
    fn empty_cursor_is_exhausted() {
        let m = M::new();
        let mut c = Cursor::first(m.root());
        assert!(c.is_exhausted());
        assert!(c.peek().is_none());
        assert!(c.advance().is_none());
    }

    #[test]
    fn full_scan_in_order() {
        let m = M::build((0..300u64).map(|i| (i * 2, i)).collect());
        let mut c = Cursor::first(m.root());
        let mut got = Vec::new();
        while let Some((k, v)) = c.advance() {
            got.push((*k, *v));
        }
        assert_eq!(got, m.to_vec());
        assert!(c.is_exhausted());
    }

    #[test]
    fn seek_lands_on_first_ge() {
        let m = M::build((0..100u64).map(|i| (i * 10, i)).collect());
        for lo in [0u64, 1, 9, 10, 11, 505, 990, 991] {
            let c = Cursor::seek(m.root(), &lo);
            let want = m.to_vec().into_iter().find(|&(k, _)| k >= lo);
            assert_eq!(c.peek().map(|(k, v)| (*k, *v)), want, "lo={lo}");
        }
    }

    #[test]
    fn peek_does_not_advance() {
        let m = M::build(vec![(1, 10), (2, 20)]);
        let mut c = Cursor::first(m.root());
        assert_eq!(c.peek(), c.peek());
        assert_eq!(c.advance(), Some((&1, &10)));
        assert_eq!(c.peek(), Some((&2, &20)));
    }
}
