//! Tree nodes, persistence, and the expose/rebuild machinery.
//!
//! A map is a [`Tree`]: `Option<Arc<Node>>`. `Arc` is the Rust counterpart
//! of PAM's reference-counting garbage collector — atomically counted,
//! freed on last release, safe under concurrency. Snapshots are O(1)
//! (`Tree::clone` bumps one count) and updates path-copy, so maps are fully
//! persistent exactly as in the paper.
//!
//! # Blocked leaves (PaC-tree style)
//!
//! Following the PaC-trees paper (Dhulipala & Blelloch), a [`Node`] is an
//! enum: an [`Internal`](Node::Internal) node carries one pivot entry plus
//! balance metadata exactly as in PAM, while a [`Leaf`](Node::Leaf) holds a
//! *sorted block* of up to `B::LEAF_CAP` entries ([`DEFAULT_LEAF_B`] by
//! default, compile-time tunable via the `PAM_LEAF_B` env var). Blocking
//! amortizes the per-entry `Arc` + pointer overhead over a whole block,
//! which is the dominant constant-factor cost in memory and scan speed.
//! Fill invariants (every non-root leaf holds `LEAF_CAP/2 ..= LEAF_CAP`
//! entries when `LEAF_CAP >= 2`) are maintained by
//! `join_tree` and checked by [`crate::validate`].
//!
//! PAM's "reuse optimization" — *"when the reference count is one we reuse
//! the current node instead of collecting it and allocating a new one"*
//! (§4, Persistence) — is reproduced by [`expose`]: algorithms take trees
//! **by value**, and destructuring a uniquely-owned node moves its fields
//! out (`Arc::try_unwrap`) instead of cloning them. Exposing a multi-entry
//! leaf splits its block at the median, so every join-based algorithm
//! remains correct unmodified; hot paths add per-block fast arms instead.
//! Build with the `no-reuse` feature to disable reuse and measure pure
//! path-copying (an ablation in the bench suite).
//!
//! Every node caches the augmented value of its subtree. For internal
//! nodes it is computed in `Node::make` as `f(A(L), f(g(k,v), A(R)))`; for
//! leaves it is the fold of `g` over the block
//! ([`AugSpec::fold_block`]) — which
//! "localizes application of the augmentation functions f and g to when a
//! node is created" (§4).

use crate::balance::Balance;
use crate::spec::AugSpec;
use std::sync::Arc;

/// A persistent augmented tree: `None` is the empty map.
pub type Tree<S, B> = Option<Arc<Node<S, B>>>;

/// Default leaf block capacity. Overridable at *compile time* with the
/// `PAM_LEAF_B` environment variable (must be 1 or an even number; 1
/// restores the paper's one-entry-per-node layout). CI sweeps this to keep
/// the degenerate case covered.
pub const DEFAULT_LEAF_B: usize = parse_leaf_b(option_env!("PAM_LEAF_B"));

const fn parse_leaf_b(s: Option<&str>) -> usize {
    match s {
        None => 32,
        Some(s) => {
            let bytes = s.as_bytes();
            assert!(!bytes.is_empty(), "PAM_LEAF_B must not be empty");
            let mut i = 0;
            let mut v: usize = 0;
            while i < bytes.len() {
                let d = bytes[i];
                assert!(d.is_ascii_digit(), "PAM_LEAF_B must be a positive integer");
                v = v * 10 + (d - b'0') as usize;
                i += 1;
            }
            // Even capacities make the half-full invariant exactly
            // achievable when splitting a block of CAP+1 .. 2*CAP+1
            // entries at the median.
            assert!(
                v == 1 || (v >= 2 && v.is_multiple_of(2)),
                "PAM_LEAF_B must be 1 or an even number >= 2"
            );
            v
        }
    }
}

/// One tree node: a blocked leaf or a pivot-carrying internal node.
pub enum Node<S: AugSpec, B: Balance> {
    /// A sorted block of `1..=B::LEAF_CAP` entries plus the cached fold of
    /// the augmentation over the block.
    Leaf(LeafNode<S, B>),
    /// A pivot entry between two subtrees, as in the paper. `meta` is the
    /// balance scheme's per-node bookkeeping (AVL height, red-black color +
    /// black height, nothing for weight-balanced); `em` is per-*entry*
    /// metadata that travels with the key through restructuring (the
    /// treap's priority).
    Internal(InternalNode<S, B>),
}

/// Payload of [`Node::Leaf`]: the sorted entry block and its cached
/// augmented value.
pub struct LeafNode<S: AugSpec, B: Balance> {
    pub(crate) entries: Box<[EntryOwned<S, B>]>,
    pub(crate) aug: S::A,
}

/// Payload of [`Node::Internal`].
pub struct InternalNode<S: AugSpec, B: Balance> {
    pub(crate) size: usize,
    pub(crate) meta: B::Meta,
    pub(crate) em: B::EntryMeta,
    pub(crate) key: S::K,
    pub(crate) val: S::V,
    pub(crate) aug: S::A,
    pub(crate) left: Tree<S, B>,
    pub(crate) right: Tree<S, B>,
}

/// An entry (key, value, entry-metadata) detached from a node — what the
/// paper's `expose` yields between the two subtrees, what `join` takes as
/// its middle argument, and what leaf blocks store contiguously.
pub struct EntryOwned<S: AugSpec, B: Balance> {
    /// The entry's key.
    pub key: S::K,
    /// The entry's value.
    pub val: S::V,
    /// Per-entry balance metadata (e.g. a treap priority).
    pub em: B::EntryMeta,
}

impl<S: AugSpec, B: Balance> Clone for EntryOwned<S, B> {
    fn clone(&self) -> Self {
        EntryOwned {
            key: self.key.clone(),
            val: self.val.clone(),
            em: self.em,
        }
    }
}

/// Number of entries in `t`.
#[inline]
pub fn size<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> usize {
    t.as_ref().map_or(0, |n| n.size_of())
}

/// The augmented value of `t`, or the identity for the empty tree.
/// This is the paper's `augVal` — O(1) because sums are maintained.
#[inline]
pub fn aug_val<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> S::A {
    t.as_ref().map_or_else(S::identity, |n| n.aug().clone())
}

impl<S: AugSpec, B: Balance> LeafNode<S, B> {
    /// Build a leaf from sorted, strictly-increasing entries, computing the
    /// block's augmented value. `entries` must hold `1..=B::LEAF_CAP` items.
    pub(crate) fn from_entries(entries: Vec<EntryOwned<S, B>>) -> Self {
        debug_assert!(!entries.is_empty(), "leaf blocks are never empty");
        debug_assert!(entries.len() <= B::LEAF_CAP.max(1), "leaf block overflow");
        let aug = S::fold_block(entries.iter().map(|e| (&e.key, &e.val)));
        LeafNode {
            entries: entries.into_boxed_slice(),
            aug,
        }
    }

    /// The sorted entry block.
    #[inline]
    pub fn entries(&self) -> &[EntryOwned<S, B>] {
        &self.entries
    }

    /// The cached fold of the augmentation over the block.
    #[inline]
    pub fn aug(&self) -> &S::A {
        &self.aug
    }
}

impl<S: AugSpec, B: Balance> Node<S, B> {
    /// Create an internal node, computing `size` and the augmented value
    /// from the children. `meta` is supplied by the balance scheme.
    pub(crate) fn make(
        left: Tree<S, B>,
        entry: EntryOwned<S, B>,
        meta: B::Meta,
        right: Tree<S, B>,
    ) -> Arc<Self> {
        let size = size(&left) + size(&right) + 1;
        let mid = S::base(&entry.key, &entry.val);
        // f(A(L), f(g(k,v), A(R))); absent children contribute nothing
        // (skipping the identity keeps combine cheap when A is itself a
        // large structure such as the range tree's inner map).
        let aug = match (&left, &right) {
            (None, None) => mid,
            (Some(l), None) => S::combine(l.aug(), &mid),
            (None, Some(r)) => S::combine(&mid, r.aug()),
            (Some(l), Some(r)) => S::combine3(l.aug(), mid, r.aug()),
        };
        Arc::new(Node::Internal(InternalNode {
            size,
            meta,
            em: entry.em,
            key: entry.key,
            val: entry.val,
            aug,
            left,
            right,
        }))
    }

    /// Create a leaf node from sorted entries (`1..=B::LEAF_CAP` of them).
    #[inline]
    pub(crate) fn make_leaf(entries: Vec<EntryOwned<S, B>>) -> Arc<Self> {
        Arc::new(Node::Leaf(LeafNode::from_entries(entries)))
    }

    /// The cached augmented value of the subtree rooted here.
    #[inline]
    pub fn aug(&self) -> &S::A {
        match self {
            Node::Leaf(l) => &l.aug,
            Node::Internal(x) => &x.aug,
        }
    }

    /// Number of entries in the subtree rooted here.
    #[inline]
    pub fn size_of(&self) -> usize {
        match self {
            Node::Leaf(l) => l.entries.len(),
            Node::Internal(x) => x.size,
        }
    }

    /// Is this a (blocked) leaf?
    #[inline]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// The two subtrees of an internal node, or `None` for a leaf.
    /// (Generic tree walkers in downstream crates pair this with
    /// [`Self::aug`]; leaf blocks have no children.)
    #[inline]
    #[allow(clippy::type_complexity)]
    pub fn children(&self) -> Option<(&Tree<S, B>, &Tree<S, B>)> {
        match self {
            Node::Leaf(_) => None,
            Node::Internal(x) => Some((&x.left, &x.right)),
        }
    }

    /// The leaf payload, if this is a leaf.
    #[inline]
    pub fn as_leaf(&self) -> Option<&LeafNode<S, B>> {
        match self {
            Node::Leaf(l) => Some(l),
            Node::Internal(_) => None,
        }
    }
}

/// Split leaf entries at the median: `(left, pivot, right)` where both
/// sides stay sorted. For a single entry both sides are empty.
#[allow(clippy::type_complexity)]
fn split_block<S: AugSpec, B: Balance>(
    mut entries: Vec<EntryOwned<S, B>>,
) -> (Tree<S, B>, EntryOwned<S, B>, B::Meta, Tree<S, B>) {
    debug_assert!(!entries.is_empty());
    let mid = entries.len() / 2;
    let mut right = entries.split_off(mid);
    let pivot = right.remove(0);
    let l = if entries.is_empty() {
        None
    } else {
        Some(Node::make_leaf(entries))
    };
    let r = if right.is_empty() {
        None
    } else {
        Some(Node::make_leaf(right))
    };
    (l, pivot, B::leaf_meta(), r)
}

/// Destructure a node into `(left, entry, meta, right)` — the paper's
/// `expose`, plus the persistence machinery.
///
/// If the `Arc` is uniquely owned the fields are **moved** out (PAM's
/// refcount-1 reuse: no clones, the node's allocation is released); if it
/// is shared, the fields are cloned (path copying), leaving every other
/// snapshot untouched.
///
/// Exposing a multi-entry **leaf** splits its block at the median into two
/// smaller leaves around the median entry (with the scheme's
/// [`Balance::leaf_meta`] standing in for stored metadata). This keeps
/// every join-based algorithm correct on blocked trees; the rebuilding
/// `join_tree` re-packs underfull blocks on the way up.
#[cfg(not(feature = "no-reuse"))]
#[inline]
#[allow(clippy::type_complexity)]
pub fn expose<S: AugSpec, B: Balance>(
    n: Arc<Node<S, B>>,
) -> (Tree<S, B>, EntryOwned<S, B>, B::Meta, Tree<S, B>) {
    match Arc::try_unwrap(n) {
        Ok(Node::Internal(x)) => (
            x.left,
            EntryOwned {
                key: x.key,
                val: x.val,
                em: x.em,
            },
            x.meta,
            x.right,
        ),
        Ok(Node::Leaf(l)) => split_block(l.entries.into_vec()),
        Err(shared) => clone_out(&shared),
    }
}

/// `no-reuse` ablation build: always path-copy, even when uniquely owned.
#[cfg(feature = "no-reuse")]
#[inline]
#[allow(clippy::type_complexity)]
pub fn expose<S: AugSpec, B: Balance>(
    n: Arc<Node<S, B>>,
) -> (Tree<S, B>, EntryOwned<S, B>, B::Meta, Tree<S, B>) {
    clone_out(&n)
}

#[allow(clippy::type_complexity)]
fn clone_out<S: AugSpec, B: Balance>(
    n: &Arc<Node<S, B>>,
) -> (Tree<S, B>, EntryOwned<S, B>, B::Meta, Tree<S, B>) {
    match &**n {
        Node::Internal(x) => (
            x.left.clone(),
            EntryOwned {
                key: x.key.clone(),
                val: x.val.clone(),
                em: x.em,
            },
            x.meta,
            x.right.clone(),
        ),
        Node::Leaf(l) => split_block(l.entries.to_vec()),
    }
}

/// Take ownership of a **leaf** node's entry block: moves the entries out
/// when the `Arc` is unique, clones them when shared (same policy as
/// [`expose`]). Panics on an internal node — callers check `is_leaf`
/// first. This is the entry point of the per-block fast paths in `ops`.
pub(crate) fn take_leaf_entries<S: AugSpec, B: Balance>(
    n: Arc<Node<S, B>>,
) -> Vec<EntryOwned<S, B>> {
    #[cfg(not(feature = "no-reuse"))]
    let n = match Arc::try_unwrap(n) {
        Ok(Node::Leaf(l)) => return l.entries.into_vec(),
        Ok(Node::Internal(_)) => unreachable!("take_leaf_entries on internal node"),
        Err(shared) => shared,
    };
    match &*n {
        Node::Leaf(l) => l.entries.to_vec(),
        Node::Internal(_) => unreachable!("take_leaf_entries on internal node"),
    }
}

/// Append every entry of `t` to `out` in key order, reusing uniquely-owned
/// allocations. Used by the blocked join to flatten small trees before
/// re-packing them into full blocks.
pub(crate) fn flatten_into<S: AugSpec, B: Balance>(t: Tree<S, B>, out: &mut Vec<EntryOwned<S, B>>) {
    let Some(n) = t else { return };
    match Arc::try_unwrap(n) {
        Ok(Node::Leaf(l)) => out.extend(l.entries.into_vec()),
        Ok(Node::Internal(x)) => {
            flatten_into(x.left, out);
            out.push(EntryOwned {
                key: x.key,
                val: x.val,
                em: x.em,
            });
            flatten_into(x.right, out);
        }
        Err(shared) => flatten_ref(&shared, out),
    }
}

fn flatten_ref<S: AugSpec, B: Balance>(n: &Node<S, B>, out: &mut Vec<EntryOwned<S, B>>) {
    match n {
        Node::Leaf(l) => out.extend(l.entries.iter().cloned()),
        Node::Internal(x) => {
            if let Some(l) = x.left.as_deref() {
                flatten_ref(l, out);
            }
            out.push(EntryOwned {
                key: x.key.clone(),
                val: x.val.clone(),
                em: x.em,
            });
            if let Some(r) = x.right.as_deref() {
                flatten_ref(r, out);
            }
        }
    }
}

/// Drop a (potentially huge) tree with parallel recursion.
///
/// `Arc`'s drop reclaims a tree sequentially; PAM's timings "include the
/// cost of any necessary garbage collection", and its collector frees
/// subtrees in parallel. This helper descends while the nodes are uniquely
/// owned, releasing the two subtrees as parallel tasks.
pub fn par_drop<S: AugSpec, B: Balance>(t: Tree<S, B>) {
    const DROP_GRAN: usize = 1 << 12;
    if let Some(n) = t {
        if n.size_of() <= DROP_GRAN {
            drop(n);
            return;
        }
        match Arc::try_unwrap(n) {
            Ok(Node::Internal(x)) => {
                let InternalNode { left, right, .. } = x;
                rayon::join(|| par_drop(left), || par_drop(right));
            }
            Ok(leaf) => drop(leaf),
            Err(shared) => drop(shared), // shared elsewhere: just decrement
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{WeightBalanced, WeightBalancedCap};
    use crate::spec::SumAug;

    type S = SumAug<u64, u64>;
    type B = WeightBalanced;

    fn entry(k: u64, v: u64) -> EntryOwned<S, B> {
        EntryOwned {
            key: k,
            val: v,
            em: (),
        }
    }

    // entry pinned to cap 32, for tests that need multi-entry blocks to
    // fit regardless of the PAM_LEAF_B the crate was compiled with
    fn entry32(k: u64, v: u64) -> EntryOwned<S, WeightBalancedCap<32>> {
        EntryOwned {
            key: k,
            val: v,
            em: (),
        }
    }

    fn leaf(k: u64, v: u64) -> Arc<Node<S, B>> {
        Node::make_leaf(vec![entry(k, v)])
    }

    #[test]
    fn make_computes_size_and_aug() {
        let l = leaf(1, 10);
        let r = leaf(3, 30);
        let n = Node::make(Some(l), entry(2, 20), (), Some(r));
        assert_eq!(n.size_of(), 3);
        assert_eq!(*n.aug(), 60);
    }

    #[test]
    fn leaf_block_caches_fold() {
        // pinned cap: must hold a 3-entry block regardless of PAM_LEAF_B
        let n: Arc<Node<S, WeightBalancedCap<32>>> =
            Node::make_leaf(vec![entry32(1, 10), entry32(2, 20), entry32(3, 30)]);
        assert_eq!(n.size_of(), 3);
        assert_eq!(*n.aug(), 60);
        assert!(n.is_leaf());
        assert!(n.children().is_none());
    }

    #[test]
    fn expose_moves_when_unique() {
        let n = leaf(7, 70);
        let (l, e, _m, r) = expose(n);
        assert!(l.is_none() && r.is_none());
        assert_eq!(e.key, 7);
        assert_eq!(e.val, 70);
    }

    #[test]
    fn expose_splits_leaf_block_at_median() {
        // pinned cap: exercises the 4-entry block split at any PAM_LEAF_B
        let n: Arc<Node<S, WeightBalancedCap<32>>> = Node::make_leaf(vec![
            entry32(1, 1),
            entry32(2, 2),
            entry32(3, 3),
            entry32(4, 4),
        ]);
        let (l, e, _m, r) = expose(n);
        assert_eq!(e.key, 3);
        assert_eq!(size(&l), 2);
        assert_eq!(size(&r), 1);
        assert_eq!(aug_val(&l), 3);
        assert_eq!(aug_val(&r), 4);
    }

    #[test]
    fn expose_clones_when_shared() {
        let n = leaf(7, 70);
        let n2 = n.clone();
        let (_, e, _, _) = expose(n);
        assert_eq!(e.key, 7);
        // the shared copy is untouched
        assert_eq!(n2.size_of(), 1);
        assert_eq!(*n2.aug(), 70);
    }

    #[test]
    fn flatten_preserves_order() {
        let l = Node::make_leaf(vec![entry(1, 1), entry(2, 2)]);
        let r = leaf(4, 4);
        let n = Node::make(Some(l), entry(3, 3), (), Some(r));
        let mut out = Vec::new();
        flatten_into(Some(n), &mut out);
        let keys: Vec<u64> = out.iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![1, 2, 3, 4]);
    }

    #[test]
    fn size_and_aug_val_of_empty() {
        let t: Tree<S, B> = None;
        assert_eq!(size(&t), 0);
        assert_eq!(aug_val(&t), 0);
    }

    #[test]
    fn parse_leaf_b_accepts_one_and_even() {
        assert_eq!(parse_leaf_b(None), 32);
        assert_eq!(parse_leaf_b(Some("1")), 1);
        assert_eq!(parse_leaf_b(Some("2")), 2);
        assert_eq!(parse_leaf_b(Some("64")), 64);
    }

    #[test]
    fn cap_is_wired_through_schemes() {
        use crate::balance::Balance as _;
        assert_eq!(WeightBalancedCap::<8>::LEAF_CAP, 8);
        assert_eq!(B::LEAF_CAP, DEFAULT_LEAF_B);
        assert_eq!(crate::balance::Treap::LEAF_CAP, 1);
    }

    #[test]
    fn par_drop_handles_shared_and_unique() {
        let l = leaf(1, 1);
        let shared = Some(l.clone());
        par_drop(shared);
        assert_eq!(l.size_of(), 1); // still alive through `l`
        par_drop(Some(l));
    }
}
