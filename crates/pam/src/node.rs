//! Tree nodes, persistence, and the expose/rebuild machinery.
//!
//! A map is a [`Tree`]: `Option<Arc<Node>>`. `Arc` is the Rust counterpart
//! of PAM's reference-counting garbage collector — atomically counted,
//! freed on last release, safe under concurrency. Snapshots are O(1)
//! (`Tree::clone` bumps one count) and updates path-copy, so maps are fully
//! persistent exactly as in the paper.
//!
//! PAM's "reuse optimization" — *"when the reference count is one we reuse
//! the current node instead of collecting it and allocating a new one"*
//! (§4, Persistence) — is reproduced by [`expose`]: algorithms take trees
//! **by value**, and destructuring a uniquely-owned node moves its fields
//! out (`Arc::try_unwrap`) instead of cloning them. Build with the
//! `no-reuse` feature to disable this and measure pure path-copying (an
//! ablation in the bench suite).
//!
//! Every node stores the augmented value of its subtree. It is computed in
//! `Node::make` as `f(A(L), f(g(k,v), A(R)))`, which "localizes
//! application of the augmentation functions f and g to when a node is
//! created" (§4) — no other code in the crate touches augmentation unless
//! it explicitly queries it.

use crate::balance::Balance;
use crate::spec::AugSpec;
use std::sync::Arc;

/// A persistent augmented tree: `None` is the empty map.
pub type Tree<S, B> = Option<Arc<Node<S, B>>>;

/// One tree node. `meta` is the balance scheme's per-node bookkeeping
/// (AVL height, red-black color + black height, nothing for
/// weight-balanced); `em` is per-*entry* metadata that travels with the
/// key through restructuring (the treap's priority).
pub struct Node<S: AugSpec, B: Balance> {
    pub(crate) size: usize,
    pub(crate) meta: B::Meta,
    pub(crate) em: B::EntryMeta,
    pub(crate) key: S::K,
    pub(crate) val: S::V,
    pub(crate) aug: S::A,
    pub(crate) left: Tree<S, B>,
    pub(crate) right: Tree<S, B>,
}

/// An entry (key, value, entry-metadata) detached from a node — what the
/// paper's `expose` yields between the two subtrees, and what `join` takes
/// as its middle argument.
pub struct EntryOwned<S: AugSpec, B: Balance> {
    /// The entry's key.
    pub key: S::K,
    /// The entry's value.
    pub val: S::V,
    /// Per-entry balance metadata (e.g. a treap priority).
    pub em: B::EntryMeta,
}

impl<S: AugSpec, B: Balance> Clone for EntryOwned<S, B> {
    fn clone(&self) -> Self {
        EntryOwned {
            key: self.key.clone(),
            val: self.val.clone(),
            em: self.em,
        }
    }
}

/// Number of entries in `t`.
#[inline]
pub fn size<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> usize {
    t.as_ref().map_or(0, |n| n.size)
}

/// The augmented value of `t`, or the identity for the empty tree.
/// This is the paper's `augVal` — O(1) because sums are maintained.
#[inline]
pub fn aug_val<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> S::A {
    t.as_ref().map_or_else(S::identity, |n| n.aug.clone())
}

impl<S: AugSpec, B: Balance> Node<S, B> {
    /// Create a node, computing `size` and the augmented value from the
    /// children. `meta` is supplied by the balance scheme.
    pub(crate) fn make(
        left: Tree<S, B>,
        entry: EntryOwned<S, B>,
        meta: B::Meta,
        right: Tree<S, B>,
    ) -> Arc<Self> {
        let size = size(&left) + size(&right) + 1;
        let mid = S::base(&entry.key, &entry.val);
        // f(A(L), f(g(k,v), A(R))); absent children contribute nothing
        // (skipping the identity keeps combine cheap when A is itself a
        // large structure such as the range tree's inner map).
        let aug = match (&left, &right) {
            (None, None) => mid,
            (Some(l), None) => S::combine(&l.aug, &mid),
            (None, Some(r)) => S::combine(&mid, &r.aug),
            (Some(l), Some(r)) => S::combine3(&l.aug, mid, &r.aug),
        };
        Arc::new(Node {
            size,
            meta,
            em: entry.em,
            key: entry.key,
            val: entry.val,
            aug,
            left,
            right,
        })
    }

    /// The entry key at this node (queries never restructure, so borrow).
    #[inline]
    pub fn key(&self) -> &S::K {
        &self.key
    }
    /// The entry value at this node.
    #[inline]
    pub fn val(&self) -> &S::V {
        &self.val
    }
    /// The cached augmented value of the subtree rooted here.
    #[inline]
    pub fn aug(&self) -> &S::A {
        &self.aug
    }
    /// The left subtree.
    #[inline]
    pub fn left(&self) -> &Tree<S, B> {
        &self.left
    }
    /// The right subtree.
    #[inline]
    pub fn right(&self) -> &Tree<S, B> {
        &self.right
    }
    /// Number of entries in the subtree rooted here.
    #[inline]
    pub fn size_of(&self) -> usize {
        self.size
    }
}

/// Destructure a node into `(left, entry, meta, right)` — the paper's
/// `expose`, plus the persistence machinery.
///
/// If the `Arc` is uniquely owned the fields are **moved** out (PAM's
/// refcount-1 reuse: no clones, the node's allocation is released); if it
/// is shared, the fields are cloned (path copying), leaving every other
/// snapshot untouched.
#[cfg(not(feature = "no-reuse"))]
#[inline]
#[allow(clippy::type_complexity)]
pub fn expose<S: AugSpec, B: Balance>(
    n: Arc<Node<S, B>>,
) -> (Tree<S, B>, EntryOwned<S, B>, B::Meta, Tree<S, B>) {
    match Arc::try_unwrap(n) {
        Ok(node) => (
            node.left,
            EntryOwned {
                key: node.key,
                val: node.val,
                em: node.em,
            },
            node.meta,
            node.right,
        ),
        Err(shared) => clone_out(&shared),
    }
}

/// `no-reuse` ablation build: always path-copy, even when uniquely owned.
#[cfg(feature = "no-reuse")]
#[inline]
#[allow(clippy::type_complexity)]
pub fn expose<S: AugSpec, B: Balance>(
    n: Arc<Node<S, B>>,
) -> (Tree<S, B>, EntryOwned<S, B>, B::Meta, Tree<S, B>) {
    clone_out(&n)
}

#[allow(clippy::type_complexity)]
fn clone_out<S: AugSpec, B: Balance>(
    n: &Arc<Node<S, B>>,
) -> (Tree<S, B>, EntryOwned<S, B>, B::Meta, Tree<S, B>) {
    (
        n.left.clone(),
        EntryOwned {
            key: n.key.clone(),
            val: n.val.clone(),
            em: n.em,
        },
        n.meta,
        n.right.clone(),
    )
}

/// Drop a (potentially huge) tree with parallel recursion.
///
/// `Arc`'s drop reclaims a tree sequentially; PAM's timings "include the
/// cost of any necessary garbage collection", and its collector frees
/// subtrees in parallel. This helper descends while the nodes are uniquely
/// owned, releasing the two subtrees as parallel tasks.
pub fn par_drop<S: AugSpec, B: Balance>(t: Tree<S, B>) {
    const DROP_GRAN: usize = 1 << 12;
    if let Some(n) = t {
        if n.size <= DROP_GRAN {
            drop(n);
            return;
        }
        match Arc::try_unwrap(n) {
            Ok(node) => {
                let Node { left, right, .. } = node;
                rayon::join(|| par_drop(left), || par_drop(right));
            }
            Err(shared) => drop(shared), // shared elsewhere: just decrement
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::WeightBalanced;
    use crate::spec::SumAug;

    type S = SumAug<u64, u64>;
    type B = WeightBalanced;

    fn leaf(k: u64, v: u64) -> Arc<Node<S, B>> {
        Node::make(
            None,
            EntryOwned {
                key: k,
                val: v,
                em: (),
            },
            (),
            None,
        )
    }

    #[test]
    fn make_computes_size_and_aug() {
        let l = leaf(1, 10);
        let r = leaf(3, 30);
        let n = Node::make(
            Some(l),
            EntryOwned {
                key: 2,
                val: 20,
                em: (),
            },
            (),
            Some(r),
        );
        assert_eq!(n.size, 3);
        assert_eq!(n.aug, 60);
    }

    #[test]
    fn expose_moves_when_unique() {
        let n = leaf(7, 70);
        let (l, e, _m, r) = expose(n);
        assert!(l.is_none() && r.is_none());
        assert_eq!(e.key, 7);
        assert_eq!(e.val, 70);
    }

    #[test]
    fn expose_clones_when_shared() {
        let n = leaf(7, 70);
        let n2 = n.clone();
        let (_, e, _, _) = expose(n);
        assert_eq!(e.key, 7);
        // the shared copy is untouched
        assert_eq!(n2.key, 7);
        assert_eq!(n2.val, 70);
    }

    #[test]
    fn size_and_aug_val_of_empty() {
        let t: Tree<S, B> = None;
        assert_eq!(size(&t), 0);
        assert_eq!(aug_val(&t), 0);
    }

    #[test]
    fn par_drop_handles_shared_and_unique() {
        let l = leaf(1, 1);
        let shared = Some(l.clone());
        par_drop(shared);
        assert_eq!(l.val, 1); // still alive through `l`
        par_drop(Some(l));
    }
}
