//! Space accounting (for the Table 4 reproduction).
//!
//! Persistence via path copying means trees *share* nodes: the union of a
//! large and a small map reuses most of the large map's nodes. These
//! helpers measure that sharing exactly, by walking reachable nodes and
//! deduplicating on their addresses — no global allocation counters, so
//! the hot paths stay untouched.
//!
//! With blocked leaves a "node" is either an internal node or a whole
//! leaf block; [`reachable_bytes`] adds the out-of-line entry array of
//! each distinct leaf, so it reflects the real footprint win of packing
//! `LEAF_CAP` entries per allocation.

use crate::balance::Balance;
use crate::node::{Node, Tree};
use crate::spec::AugSpec;
use std::collections::HashSet;

/// Size in bytes of one tree node for this spec/scheme (excluding the two
/// `Arc` refcount words, which add 16 bytes per heap allocation, and
/// excluding leaf entry arrays).
pub fn node_size<S: AugSpec, B: Balance>() -> usize {
    std::mem::size_of::<Node<S, B>>()
}

fn collect<'a, S: AugSpec, B: Balance>(
    t: &'a Tree<S, B>,
    seen: &mut HashSet<*const Node<S, B>>,
    nodes: &mut Vec<&'a Node<S, B>>,
) {
    let mut stack: Vec<&Node<S, B>> = Vec::new();
    if let Some(n) = t.as_deref() {
        stack.push(n);
    }
    while let Some(n) = stack.pop() {
        if !seen.insert(n as *const _) {
            continue; // subtree already counted (shared)
        }
        nodes.push(n);
        if let Some((l, r)) = n.children() {
            if let Some(l) = l.as_deref() {
                stack.push(l);
            }
            if let Some(r) = r.as_deref() {
                stack.push(r);
            }
        }
    }
}

/// Number of *distinct* nodes reachable from any of `roots` (shared nodes
/// counted once). A leaf block counts as one node regardless of how many
/// entries it packs.
pub fn unique_nodes<S: AugSpec, B: Balance>(roots: &[&Tree<S, B>]) -> usize {
    let mut seen = HashSet::new();
    let mut nodes = Vec::new();
    for t in roots {
        collect(t, &mut seen, &mut nodes);
    }
    seen.len()
}

/// Approximate heap footprint, in bytes, of everything reachable from
/// `roots`: for each distinct node, the node itself + the two `Arc`
/// refcount words + (for leaves) the boxed entry array. Shared nodes are
/// counted once, which is exactly what makes multi-version stores cheap —
/// N snapshots of similar maps cost barely more than one.
/// (Used by `pam-store`'s stats surface.)
pub fn reachable_bytes<S: AugSpec, B: Balance>(roots: &[&Tree<S, B>]) -> usize {
    let mut seen = HashSet::new();
    let mut nodes = Vec::new();
    for t in roots {
        collect(t, &mut seen, &mut nodes);
    }
    nodes
        .iter()
        .map(|n| {
            let base = node_size::<S, B>() + 2 * std::mem::size_of::<usize>();
            match n.as_leaf() {
                Some(l) => base + std::mem::size_of_val(l.entries()),
                None => base,
            }
        })
        .sum()
}

/// How many of `result`'s nodes are shared with (reachable from) `inputs`?
///
/// `unique - shared` is the number of freshly allocated nodes the
/// operation producing `result` had to create.
pub fn shared_with<S: AugSpec, B: Balance>(
    result: &Tree<S, B>,
    inputs: &[&Tree<S, B>],
) -> (usize, usize) {
    let mut input_nodes = HashSet::new();
    let mut scratch = Vec::new();
    for t in inputs {
        collect(t, &mut input_nodes, &mut scratch);
    }
    let mut result_nodes = HashSet::new();
    let mut scratch2 = Vec::new();
    collect(result, &mut result_nodes, &mut scratch2);
    let shared = result_nodes
        .iter()
        .filter(|p| input_nodes.contains(*p))
        .count();
    (result_nodes.len(), shared)
}
