//! Space accounting (for the Table 4 reproduction).
//!
//! Persistence via path copying means trees *share* nodes: the union of a
//! large and a small map reuses most of the large map's nodes. These
//! helpers measure that sharing exactly, by walking reachable nodes and
//! deduplicating on their addresses — no global allocation counters, so
//! the hot paths stay untouched.

use crate::balance::Balance;
use crate::node::{Node, Tree};
use crate::spec::AugSpec;
use std::collections::HashSet;

/// Size in bytes of one tree node for this spec/scheme (excluding the two
/// `Arc` refcount words, which add 16 bytes per heap allocation).
pub fn node_size<S: AugSpec, B: Balance>() -> usize {
    std::mem::size_of::<Node<S, B>>()
}

fn collect<S: AugSpec, B: Balance>(t: &Tree<S, B>, seen: &mut HashSet<*const Node<S, B>>) {
    let mut stack: Vec<&Node<S, B>> = Vec::new();
    if let Some(n) = t.as_deref() {
        stack.push(n);
    }
    while let Some(n) = stack.pop() {
        if !seen.insert(n as *const _) {
            continue; // subtree already counted (shared)
        }
        if let Some(l) = n.left.as_deref() {
            stack.push(l);
        }
        if let Some(r) = n.right.as_deref() {
            stack.push(r);
        }
    }
}

/// Number of *distinct* nodes reachable from any of `roots` (shared nodes
/// counted once).
pub fn unique_nodes<S: AugSpec, B: Balance>(roots: &[&Tree<S, B>]) -> usize {
    let mut seen = HashSet::new();
    for t in roots {
        collect(t, &mut seen);
    }
    seen.len()
}

/// Approximate heap footprint, in bytes, of everything reachable from
/// `roots`: distinct nodes × (node size + the two `Arc` refcount words).
/// Shared nodes are counted once, which is exactly what makes multi-version
/// stores cheap — N snapshots of similar maps cost barely more than one.
/// (Used by `pam-store`'s stats surface.)
pub fn reachable_bytes<S: AugSpec, B: Balance>(roots: &[&Tree<S, B>]) -> usize {
    unique_nodes(roots) * (node_size::<S, B>() + 2 * std::mem::size_of::<usize>())
}

/// How many of `result`'s nodes are shared with (reachable from) `inputs`?
///
/// `unique - shared` is the number of freshly allocated nodes the
/// operation producing `result` had to create.
pub fn shared_with<S: AugSpec, B: Balance>(
    result: &Tree<S, B>,
    inputs: &[&Tree<S, B>],
) -> (usize, usize) {
    let mut input_nodes = HashSet::new();
    for t in inputs {
        collect(t, &mut input_nodes);
    }
    let mut result_nodes = HashSet::new();
    collect(result, &mut result_nodes);
    let shared = result_nodes
        .iter()
        .filter(|p| input_nodes.contains(*p))
        .count();
    (result_nodes.len(), shared)
}
