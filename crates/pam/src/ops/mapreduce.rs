//! `mapReduce`, structure-preserving `map_values`, and parallel flattening.

use crate::balance::{join_tree, Balance};
use crate::node::{size, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use parlay::{granularity, par2_if, par_fill};
use std::mem::MaybeUninit;

/// The paper's `mapReduce(g', f', I', m)`: apply `map` to every entry and
/// fold the results with the associative `reduce` (identity `id`).
/// Linear work, O(log n) span.
pub fn map_reduce<S, B, T, M, R>(t: &Tree<S, B>, map: &M, reduce: &R, id: T) -> T
where
    S: AugSpec,
    B: Balance,
    T: Send,
    M: Fn(&S::K, &S::V) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    match rec(t, map, reduce) {
        Some(v) => v,
        None => id,
    }
}

fn rec<S, B, T, M, R>(t: &Tree<S, B>, map: &M, reduce: &R) -> Option<T>
where
    S: AugSpec,
    B: Balance,
    T: Send,
    M: Fn(&S::K, &S::V) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    let n = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            // sequential in-order fold over the block
            let mut it = l.entries().iter();
            let first = it.next().expect("leaf blocks are never empty");
            let mut acc = map(&first.key, &first.val);
            for e in it {
                acc = reduce(acc, map(&e.key, &e.val));
            }
            Some(acc)
        }
        Node::Internal(x) => {
            let mid = map(&x.key, &x.val);
            let (l, r) = par2_if(
                x.size > granularity(),
                || rec(&x.left, map, reduce),
                || rec(&x.right, map, reduce),
            );
            let lm = match l {
                Some(l) => reduce(l, mid),
                None => mid,
            };
            Some(match r {
                Some(r) => reduce(lm, r),
                None => lm,
            })
        }
    }
}

/// Visit every entry in key order, sequentially. This is the streaming
/// export primitive (checkpoint writers, serializers): no intermediate
/// vector, no iterator stack churn — one in-order recursion whose depth
/// is the tree height, emitting whole leaf blocks with a tight loop.
pub fn for_each<'a, S, B, F>(t: &'a Tree<S, B>, f: &mut F)
where
    S: AugSpec,
    B: Balance,
    F: FnMut(&'a S::K, &'a S::V),
{
    if let Some(n) = t.as_deref() {
        match n {
            Node::Leaf(l) => {
                for e in l.entries() {
                    f(&e.key, &e.val);
                }
            }
            Node::Internal(x) => {
                for_each(&x.left, f);
                f(&x.key, &x.val);
                for_each(&x.right, f);
            }
        }
    }
}

/// Rebuild the map with values transformed by `f`, preserving the tree
/// *shape* (and therefore the balance metadata) while recomputing the
/// augmented values under the target spec `S2`. The key type and order
/// must be unchanged. Linear work, O(log n) span.
pub fn map_values<S, S2, B, F>(t: &Tree<S, B>, f: &F) -> Tree<S2, B>
where
    S: AugSpec,
    S2: AugSpec<K = S::K>,
    B: Balance,
    F: Fn(&S::K, &S::V) -> S2::V + Sync,
{
    let n: &Node<S, B> = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let entries = l
                .entries()
                .iter()
                .map(|e| EntryOwned {
                    key: e.key.clone(),
                    val: f(&e.key, &e.val),
                    em: e.em,
                })
                .collect();
            Some(Node::make_leaf(entries))
        }
        Node::Internal(x) => {
            let (l, r) = par2_if(
                x.size > granularity(),
                || map_values::<S, S2, B, F>(&x.left, f),
                || map_values::<S, S2, B, F>(&x.right, f),
            );
            // Same shape + same balance scheme => reusing `meta`/`em`
            // verbatim is valid for every scheme (heights, colors,
            // priorities only depend on structure / entry identity).
            Some(Node::make(
                l,
                EntryOwned {
                    key: x.key.clone(),
                    val: f(&x.key, &x.val),
                    em: x.em,
                },
                x.meta,
                r,
            ))
        }
    }
}

/// Filter-and-map in one pass: rebuild the map keeping only entries for
/// which `f` returns `Some`, with transformed values under spec `S2`.
/// Linear work, O(log² n) span (join-based, like `filter`).
pub fn filter_map_values<S, S2, B, F>(t: &Tree<S, B>, f: &F) -> Tree<S2, B>
where
    S: AugSpec,
    S2: AugSpec<K = S::K>,
    B: Balance,
    F: Fn(&S::K, &S::V) -> Option<S2::V> + Sync,
{
    let n: &Node<S, B> = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let entries: Vec<EntryOwned<S2, B>> = l
                .entries()
                .iter()
                .filter_map(|e| {
                    f(&e.key, &e.val).map(|val| EntryOwned {
                        key: e.key.clone(),
                        val,
                        em: e.em,
                    })
                })
                .collect();
            crate::balance::from_sorted_entries::<S2, B>(entries)
        }
        Node::Internal(x) => {
            let kept = f(&x.key, &x.val);
            let (l, r) = par2_if(
                x.size > granularity(),
                || filter_map_values::<S, S2, B, F>(&x.left, f),
                || filter_map_values::<S, S2, B, F>(&x.right, f),
            );
            match kept {
                Some(val) => join_tree(
                    l,
                    EntryOwned {
                        key: x.key.clone(),
                        val,
                        em: x.em,
                    },
                    r,
                ),
                None => crate::ops::split::join2(l, r),
            }
        }
    }
}

/// Flatten to a sorted `Vec<(K, V)>` in parallel.
pub fn to_vec<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Vec<(S::K, S::V)> {
    par_fill(size(t), |out| fill_entries(t, out))
}

fn fill_entries<S: AugSpec, B: Balance>(t: &Tree<S, B>, out: &mut [MaybeUninit<(S::K, S::V)>]) {
    if let Some(n) = t.as_deref() {
        match n {
            Node::Leaf(l) => {
                for (slot, e) in out.iter_mut().zip(l.entries()) {
                    *slot = MaybeUninit::new((e.key.clone(), e.val.clone()));
                }
            }
            Node::Internal(x) => {
                let ls = size(&x.left);
                let (lo, rest) = out.split_at_mut(ls);
                let (mid, ro) = rest.split_at_mut(1);
                mid[0] = MaybeUninit::new((x.key.clone(), x.val.clone()));
                par2_if(
                    x.size > granularity(),
                    || fill_entries(&x.left, lo),
                    || fill_entries(&x.right, ro),
                );
            }
        }
    }
}

/// The keys, in order, in parallel.
pub fn keys<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Vec<S::K> {
    par_fill(size(t), |out| fill_keys(t, out))
}

fn fill_keys<S: AugSpec, B: Balance>(t: &Tree<S, B>, out: &mut [MaybeUninit<S::K>]) {
    if let Some(n) = t.as_deref() {
        match n {
            Node::Leaf(l) => {
                for (slot, e) in out.iter_mut().zip(l.entries()) {
                    *slot = MaybeUninit::new(e.key.clone());
                }
            }
            Node::Internal(x) => {
                let ls = size(&x.left);
                let (lo, rest) = out.split_at_mut(ls);
                let (mid, ro) = rest.split_at_mut(1);
                mid[0] = MaybeUninit::new(x.key.clone());
                par2_if(
                    x.size > granularity(),
                    || fill_keys(&x.left, lo),
                    || fill_keys(&x.right, ro),
                );
            }
        }
    }
}

/// The values, in key order, in parallel.
pub fn values<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Vec<S::V> {
    par_fill(size(t), |out| fill_vals(t, out))
}

fn fill_vals<S: AugSpec, B: Balance>(t: &Tree<S, B>, out: &mut [MaybeUninit<S::V>]) {
    if let Some(n) = t.as_deref() {
        match n {
            Node::Leaf(l) => {
                for (slot, e) in out.iter_mut().zip(l.entries()) {
                    *slot = MaybeUninit::new(e.val.clone());
                }
            }
            Node::Internal(x) => {
                let ls = size(&x.left);
                let (lo, rest) = out.split_at_mut(ls);
                let (mid, ro) = rest.split_at_mut(1);
                mid[0] = MaybeUninit::new(x.val.clone());
                par2_if(
                    x.size > granularity(),
                    || fill_vals(&x.left, lo),
                    || fill_vals(&x.right, ro),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::{NoAug, SumAug};
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    #[test]
    fn map_reduce_identity_on_empty() {
        assert_eq!(M::new().map_reduce(|_, &v| v, |a, b| a + b, 42), 42);
    }

    #[test]
    fn map_reduce_non_commutative_reduce_sees_in_order() {
        // concatenate keys: requires in-order association
        let m: AugMap<NoAug<u8, u8>> = AugMap::build(vec![(3, 0), (1, 0), (2, 0)]);
        let s = m.map_reduce(
            |k, _| k.to_string(),
            |a, b| format!("{a}{b}"),
            String::new(),
        );
        assert_eq!(s, "123");
    }

    #[test]
    fn map_reduce_in_order_across_blocks() {
        // long enough to span many leaf blocks
        let m: AugMap<NoAug<u32, u32>> = AugMap::build((0..200u32).map(|i| (i, 0)).collect());
        let s = m.map_reduce(|k, _| format!("{k},"), |a, b| a + &b, String::new());
        let want: String = (0..200u32).map(|k| format!("{k},")).collect();
        assert_eq!(s, want);
    }

    #[test]
    fn map_values_preserves_shape_and_recomputes_aug() {
        let m = M::build((0..300u64).map(|i| (i, 1)).collect());
        let doubled: M = m.map_values(|_, &v| v * 2);
        doubled.check_invariants().unwrap();
        assert_eq!(doubled.aug_val(), 600);
        assert_eq!(doubled.len(), 300);
    }

    #[test]
    fn filter_map_values_keeps_invariants() {
        let m = M::build((0..500u64).map(|i| (i, i)).collect());
        let odd: M = m.filter_map_values(|_, &v| (v % 2 == 1).then_some(v * 10));
        odd.check_invariants().unwrap();
        assert_eq!(odd.len(), 250);
        assert_eq!(odd.get(&3), Some(&30));
        assert_eq!(odd.get(&4), None);
    }

    #[test]
    fn to_vec_keys_values_agree() {
        let m = M::build(vec![(5, 50), (1, 10), (9, 90)]);
        assert_eq!(m.to_vec(), vec![(1, 10), (5, 50), (9, 90)]);
        assert_eq!(m.keys(), vec![1, 5, 9]);
        assert_eq!(m.values(), vec![10, 50, 90]);
        assert!(M::new().to_vec().is_empty());
    }
}
