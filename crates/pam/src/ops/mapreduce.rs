//! `mapReduce`, structure-preserving `map_values`, and parallel flattening.

use crate::balance::Balance;
use crate::node::{size, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use parlay::{granularity, par2_if, par_fill};
use std::mem::MaybeUninit;

/// The paper's `mapReduce(g', f', I', m)`: apply `map` to every entry and
/// fold the results with the associative `reduce` (identity `id`).
/// Linear work, O(log n) span.
pub fn map_reduce<S, B, T, M, R>(t: &Tree<S, B>, map: &M, reduce: &R, id: T) -> T
where
    S: AugSpec,
    B: Balance,
    T: Send,
    M: Fn(&S::K, &S::V) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    match rec(t, map, reduce) {
        Some(v) => v,
        None => id,
    }
}

fn rec<S, B, T, M, R>(t: &Tree<S, B>, map: &M, reduce: &R) -> Option<T>
where
    S: AugSpec,
    B: Balance,
    T: Send,
    M: Fn(&S::K, &S::V) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    let n = t.as_deref()?;
    let mid = map(&n.key, &n.val);
    let (l, r) = par2_if(
        n.size > granularity(),
        || rec(&n.left, map, reduce),
        || rec(&n.right, map, reduce),
    );
    let lm = match l {
        Some(l) => reduce(l, mid),
        None => mid,
    };
    Some(match r {
        Some(r) => reduce(lm, r),
        None => lm,
    })
}

/// Visit every entry in key order, sequentially. This is the streaming
/// export primitive (checkpoint writers, serializers): no intermediate
/// vector, no iterator stack churn — one in-order recursion whose depth
/// is the tree height.
pub fn for_each<'a, S, B, F>(t: &'a Tree<S, B>, f: &mut F)
where
    S: AugSpec,
    B: Balance,
    F: FnMut(&'a S::K, &'a S::V),
{
    if let Some(n) = t.as_deref() {
        for_each(&n.left, f);
        f(&n.key, &n.val);
        for_each(&n.right, f);
    }
}

/// Rebuild the map with values transformed by `f`, preserving the tree
/// *shape* (and therefore the balance metadata) while recomputing the
/// augmented values under the target spec `S2`. The key type and order
/// must be unchanged. Linear work, O(log n) span.
pub fn map_values<S, S2, B, F>(t: &Tree<S, B>, f: &F) -> Tree<S2, B>
where
    S: AugSpec,
    S2: AugSpec<K = S::K>,
    B: Balance,
    F: Fn(&S::K, &S::V) -> S2::V + Sync,
{
    let n: &Node<S, B> = t.as_deref()?;
    let (l, r) = par2_if(
        n.size > granularity(),
        || map_values::<S, S2, B, F>(&n.left, f),
        || map_values::<S, S2, B, F>(&n.right, f),
    );
    // Same shape + same balance scheme => reusing `meta`/`em` verbatim is
    // valid for every scheme (heights, colors, priorities only depend on
    // structure / entry identity).
    Some(Node::make(
        l,
        EntryOwned {
            key: n.key.clone(),
            val: f(&n.key, &n.val),
            em: n.em,
        },
        n.meta,
        r,
    ))
}

/// Filter-and-map in one pass: rebuild the map keeping only entries for
/// which `f` returns `Some`, with transformed values under spec `S2`.
/// Linear work, O(log² n) span (join-based, like `filter`).
pub fn filter_map_values<S, S2, B, F>(t: &Tree<S, B>, f: &F) -> Tree<S2, B>
where
    S: AugSpec,
    S2: AugSpec<K = S::K>,
    B: Balance,
    F: Fn(&S::K, &S::V) -> Option<S2::V> + Sync,
{
    let n: &Node<S, B> = t.as_deref()?;
    let kept = f(&n.key, &n.val);
    let (l, r) = par2_if(
        n.size > granularity(),
        || filter_map_values::<S, S2, B, F>(&n.left, f),
        || filter_map_values::<S, S2, B, F>(&n.right, f),
    );
    match kept {
        Some(val) => Some(B::join(
            l,
            EntryOwned {
                key: n.key.clone(),
                val,
                em: n.em,
            },
            r,
        )),
        None => crate::ops::split::join2(l, r),
    }
}

/// Flatten to a sorted `Vec<(K, V)>` in parallel.
pub fn to_vec<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Vec<(S::K, S::V)> {
    par_fill(size(t), |out| fill_entries(t, out))
}

fn fill_entries<S: AugSpec, B: Balance>(t: &Tree<S, B>, out: &mut [MaybeUninit<(S::K, S::V)>]) {
    if let Some(n) = t.as_deref() {
        let ls = size(&n.left);
        let (lo, rest) = out.split_at_mut(ls);
        let (mid, ro) = rest.split_at_mut(1);
        mid[0] = MaybeUninit::new((n.key.clone(), n.val.clone()));
        par2_if(
            n.size > granularity(),
            || fill_entries(&n.left, lo),
            || fill_entries(&n.right, ro),
        );
    }
}

/// The keys, in order, in parallel.
pub fn keys<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Vec<S::K> {
    par_fill(size(t), |out| fill_keys(t, out))
}

fn fill_keys<S: AugSpec, B: Balance>(t: &Tree<S, B>, out: &mut [MaybeUninit<S::K>]) {
    if let Some(n) = t.as_deref() {
        let ls = size(&n.left);
        let (lo, rest) = out.split_at_mut(ls);
        let (mid, ro) = rest.split_at_mut(1);
        mid[0] = MaybeUninit::new(n.key.clone());
        par2_if(
            n.size > granularity(),
            || fill_keys(&n.left, lo),
            || fill_keys(&n.right, ro),
        );
    }
}

/// The values, in key order, in parallel.
pub fn values<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Vec<S::V> {
    par_fill(size(t), |out| fill_vals(t, out))
}

fn fill_vals<S: AugSpec, B: Balance>(t: &Tree<S, B>, out: &mut [MaybeUninit<S::V>]) {
    if let Some(n) = t.as_deref() {
        let ls = size(&n.left);
        let (lo, rest) = out.split_at_mut(ls);
        let (mid, ro) = rest.split_at_mut(1);
        mid[0] = MaybeUninit::new(n.val.clone());
        par2_if(
            n.size > granularity(),
            || fill_vals(&n.left, lo),
            || fill_vals(&n.right, ro),
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::{NoAug, SumAug};
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    #[test]
    fn map_reduce_identity_on_empty() {
        assert_eq!(M::new().map_reduce(|_, &v| v, |a, b| a + b, 42), 42);
    }

    #[test]
    fn map_reduce_non_commutative_reduce_sees_in_order() {
        // concatenate keys: requires in-order association
        let m: AugMap<NoAug<u8, u8>> = AugMap::build(vec![(3, 0), (1, 0), (2, 0)]);
        let s = m.map_reduce(
            |k, _| k.to_string(),
            |a, b| format!("{a}{b}"),
            String::new(),
        );
        assert_eq!(s, "123");
    }

    #[test]
    fn map_values_preserves_shape_and_recomputes_aug() {
        let m = M::build((0..300u64).map(|i| (i, 1)).collect());
        let doubled: M = m.map_values(|_, &v| v * 2);
        doubled.check_invariants().unwrap();
        assert_eq!(doubled.aug_val(), 600);
        assert_eq!(doubled.len(), 300);
    }

    #[test]
    fn to_vec_keys_values_agree() {
        let m = M::build(vec![(5, 50), (1, 10), (9, 90)]);
        assert_eq!(m.to_vec(), vec![(1, 10), (5, 50), (9, 90)]);
        assert_eq!(m.keys(), vec![1, 5, 9]);
        assert_eq!(m.values(), vec![10, 50, 90]);
        assert!(M::new().to_vec().is_empty());
    }
}
