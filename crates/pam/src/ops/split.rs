//! `split`, `join2` and their helpers — the glue between `join` and the
//! bulk algorithms (§4, "Join, Split, Join2 and Union"). Splitting a leaf
//! block slices it in O(LEAF_CAP); the halves stay legal because a
//! *root* leaf may hold any number of entries, and every non-root
//! position is re-joined through the repairing `join_tree`.

use crate::balance::{join_tree, Balance};
use crate::node::{expose, take_leaf_entries, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;
use std::sync::Arc;

/// Wrap entries as a leaf, or `None` when empty.
fn leaf_or_empty<S: AugSpec, B: Balance>(entries: Vec<EntryOwned<S, B>>) -> Tree<S, B> {
    if entries.is_empty() {
        None
    } else {
        Some(Node::make_leaf(entries))
    }
}

/// `⟨L, v, R⟩ = split(T, k)`: entries less than `k`, the value at `k` (if
/// present), and entries greater than `k`. O(log n).
#[allow(clippy::type_complexity)]
pub fn split<S: AugSpec, B: Balance>(
    t: Tree<S, B>,
    k: &S::K,
) -> (Tree<S, B>, Option<S::V>, Tree<S, B>) {
    match t {
        None => (None, None, None),
        Some(n) if n.is_leaf() => {
            let mut entries = take_leaf_entries(n);
            let (v, right) = match entries.binary_search_by(|x| S::compare(&x.key, k)) {
                Ok(i) => {
                    let mut right = entries.split_off(i);
                    let at = right.remove(0);
                    (Some(at.val), right)
                }
                Err(i) => (None, entries.split_off(i)),
            };
            (leaf_or_empty(entries), v, leaf_or_empty(right))
        }
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            match S::compare(k, &e.key) {
                Ordering::Equal => (l, Some(e.val), r),
                Ordering::Less => {
                    let (ll, b, lr) = split(l, k);
                    (ll, b, join_tree(lr, e, r))
                }
                Ordering::Greater => {
                    let (rl, b, rr) = split(r, k);
                    (join_tree(l, e, rl), b, rr)
                }
            }
        }
    }
}

/// Remove and return the maximum entry. O(log n).
pub fn split_last<S: AugSpec, B: Balance>(n: Arc<Node<S, B>>) -> (Tree<S, B>, EntryOwned<S, B>) {
    if n.is_leaf() {
        let mut entries = take_leaf_entries(n);
        let last = entries.pop().expect("leaf blocks are never empty");
        return (leaf_or_empty(entries), last);
    }
    let (l, e, _m, r) = expose(n);
    match r {
        None => (l, e),
        Some(rn) => {
            let (rrest, last) = split_last(rn);
            (join_tree(l, e, rrest), last)
        }
    }
}

/// Remove and return the minimum entry. O(log n).
pub fn split_first<S: AugSpec, B: Balance>(n: Arc<Node<S, B>>) -> (EntryOwned<S, B>, Tree<S, B>) {
    if n.is_leaf() {
        let mut entries = take_leaf_entries(n);
        let first = entries.remove(0);
        return (first, leaf_or_empty(entries));
    }
    let (l, e, _m, r) = expose(n);
    match l {
        None => (e, r),
        Some(ln) => {
            let (first, lrest) = split_first(ln);
            (first, join_tree(lrest, e, r))
        }
    }
}

/// Join without a middle entry: all keys of `l` must be less than all keys
/// of `r`. O(log n).
pub fn join2<S: AugSpec, B: Balance>(l: Tree<S, B>, r: Tree<S, B>) -> Tree<S, B> {
    match l {
        None => r,
        Some(ln) => {
            let (lrest, last) = split_last(ln);
            join_tree(lrest, last, r)
        }
    }
}

/// Split by *rank*: the first `i` entries (by key order) and the rest.
/// O(log n) — the ordinal counterpart of [`split`], built on the stored
/// subtree sizes.
pub fn split_rank<S: AugSpec, B: Balance>(t: Tree<S, B>, i: usize) -> (Tree<S, B>, Tree<S, B>) {
    match t {
        None => (None, None),
        Some(n) => {
            if i == 0 {
                return (None, Some(n));
            }
            if i >= n.size_of() {
                return (Some(n), None);
            }
            if n.is_leaf() {
                let mut entries = take_leaf_entries(n);
                let right = entries.split_off(i);
                return (leaf_or_empty(entries), leaf_or_empty(right));
            }
            let (l, e, _m, r) = expose(n);
            let ls = crate::node::size(&l);
            match i.cmp(&(ls + 1)) {
                Ordering::Less => {
                    // split falls inside the left subtree
                    let (ll, lr) = split_rank(l, i);
                    (ll, join_tree(lr, e, r))
                }
                Ordering::Equal => (join_tree(l, e, None), r),
                Ordering::Greater => {
                    let (rl, rr) = split_rank(r, i - ls - 1);
                    (join_tree(l, e, rl), rr)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SumAug;
    use crate::{AugMap, WeightBalanced};

    type S = SumAug<u64, u64>;
    type M = AugMap<S>;

    #[test]
    fn split_on_empty_and_boundaries() {
        let (l, v, r) = split::<S, WeightBalanced>(None, &5);
        assert!(l.is_none() && v.is_none() && r.is_none());

        let m = M::build(vec![(10, 1), (20, 2), (30, 3)]);
        let (l, v, r) = split(m.root().clone(), &10);
        assert_eq!(crate::node::size(&l), 0);
        assert_eq!(v, Some(1));
        assert_eq!(crate::node::size(&r), 2);
        let (l, v, r) = split(m.root().clone(), &35);
        assert_eq!(crate::node::size(&l), 3);
        assert_eq!(v, None);
        assert!(r.is_none());
    }

    #[test]
    fn split_first_last_extract_extremes() {
        let m = M::build((1..=100u64).map(|i| (i, i)).collect());
        let (rest, last) = split_last(m.root().clone().unwrap());
        assert_eq!(last.key, 100);
        assert_eq!(crate::node::size(&rest), 99);
        let (first, rest) = split_first(m.root().clone().unwrap());
        assert_eq!(first.key, 1);
        assert_eq!(crate::node::size(&rest), 99);
    }

    #[test]
    fn join2_concatenates() {
        let a = M::build((0..50u64).map(|i| (i, i)).collect());
        let b = M::build((100..150u64).map(|i| (i, i)).collect());
        let j = join2(a.root().clone(), b.root().clone());
        assert_eq!(crate::node::size(&j), 100);
        let j = M::from_root(j);
        j.check_invariants().unwrap();
        assert_eq!(j.first().map(|(k, _)| *k), Some(0));
        assert_eq!(j.last().map(|(k, _)| *k), Some(149));
        // empty sides
        assert!(join2::<S, WeightBalanced>(None, None).is_none());
    }

    #[test]
    fn split_rank_boundaries() {
        let m = M::build((0..10u64).map(|i| (i, i)).collect());
        let (l, r) = split_rank(m.root().clone(), 0);
        assert!(l.is_none());
        assert_eq!(crate::node::size(&r), 10);
        let (l, r) = split_rank(m.root().clone(), 10);
        assert_eq!(crate::node::size(&l), 10);
        assert!(r.is_none());
        let (l, r) = split_rank::<S, WeightBalanced>(None, 3);
        assert!(l.is_none() && r.is_none());
    }

    #[test]
    fn split_inside_blocks_keeps_both_halves_valid() {
        let m = M::build((0..300u64).map(|i| (i * 2, i)).collect());
        for k in [0u64, 1, 7, 100, 299, 300, 598, 600] {
            let (l, _, r) = split(m.root().clone(), &k);
            M::from_root(l).check_invariants().unwrap();
            M::from_root(r).check_invariants().unwrap();
        }
        for i in [0usize, 1, 17, 150, 299, 300] {
            let (l, r) = split_rank(m.root().clone(), i);
            assert_eq!(crate::node::size(&l), i);
            M::from_root(l).check_invariants().unwrap();
            M::from_root(r).check_invariants().unwrap();
        }
    }
}
