//! Parallel bulk set operations: `union`, `intersect`, `difference`.
//!
//! These are the split/join divide-and-conquer algorithms of the SPAA'16
//! paper (UNION shown as Figure 2 of the PAM paper), extended with a value
//! combine function `h` applied when a key occurs in both inputs. They are
//! work-optimal — O(m·log(n/m + 1)) for inputs of size m ≤ n — and have
//! O(log n · log m) span with the two recursive calls forked in parallel.
//!
//! With blocked leaves, the recursion bottoms out when both sides fit in
//! a block: a sequential sorted merge of the two blocks replaces further
//! splitting.

use crate::balance::{from_sorted_entries, join_tree, Balance};
use crate::node::{expose, flatten_into, size, EntryOwned, Tree};
use crate::ops::split::{join2, split};
use crate::spec::AugSpec;
use parlay::{granularity, par2_if};
use std::cmp::Ordering;

/// Flatten two key-disjoint-or-overlapping small trees and merge them,
/// resolving duplicate keys with `resolve` (`None` drops the key).
fn merge_blocks<S, B, F>(t1: Tree<S, B>, t2: Tree<S, B>, each: MergeKeep, resolve: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V, &S::V) -> Option<S::V>,
{
    let mut a = Vec::with_capacity(size(&t1));
    flatten_into(t1, &mut a);
    let mut b = Vec::with_capacity(size(&t2));
    flatten_into(t2, &mut b);
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut bi = b.into_iter().peekable();
    for e1 in a {
        loop {
            match bi.peek() {
                Some(e2) => match S::compare(&e2.key, &e1.key) {
                    Ordering::Less => {
                        let e2 = bi.next().expect("peeked");
                        if each.right {
                            out.push(e2);
                        }
                    }
                    Ordering::Equal => {
                        let e2 = bi.next().expect("peeked");
                        if let Some(val) = resolve(&e1.val, &e2.val) {
                            out.push(EntryOwned {
                                key: e1.key,
                                val,
                                em: e1.em,
                            });
                        }
                        break;
                    }
                    Ordering::Greater => {
                        if each.left {
                            out.push(e1);
                        }
                        break;
                    }
                },
                None => {
                    if each.left {
                        out.push(e1);
                    }
                    break;
                }
            }
        }
    }
    if each.right {
        out.extend(bi);
    }
    from_sorted_entries::<S, B>(out)
}

/// Which one-sided keys survive a [`merge_blocks`].
#[derive(Copy, Clone)]
struct MergeKeep {
    left: bool,
    right: bool,
}

/// Union of two maps. When a key appears in both, the result value is
/// `combine(v1, v2)` with `v1` from `t1` and `v2` from `t2`.
pub fn union<S, B, F>(t1: Tree<S, B>, t2: Tree<S, B>, combine: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V, &S::V) -> S::V + Sync,
{
    match (t1, t2) {
        (None, t2) => t2,
        (t1, None) => t1,
        (Some(n1), Some(n2)) => {
            let cap = B::LEAF_CAP;
            if n1.size_of() <= cap && n2.size_of() <= cap {
                return merge_blocks(
                    Some(n1),
                    Some(n2),
                    MergeKeep {
                        left: true,
                        right: true,
                    },
                    &|v1, v2| Some(combine(v1, v2)),
                );
            }
            let work = n1.size_of() + n2.size_of();
            let (l2, e2, _m, r2) = expose(n2);
            let (l1, v1, r1) = split(Some(n1), &e2.key);
            let (l, r) = par2_if(
                work > granularity(),
                move || union(l1, l2, combine),
                move || union(r1, r2, combine),
            );
            let val = match v1 {
                Some(v1) => combine(&v1, &e2.val),
                None => e2.val,
            };
            join_tree(
                l,
                EntryOwned {
                    key: e2.key,
                    val,
                    em: e2.em,
                },
                r,
            )
        }
    }
}

/// Intersection of two maps: keys present in both, values combined with
/// `combine(v1, v2)`.
pub fn intersect<S, B, F>(t1: Tree<S, B>, t2: Tree<S, B>, combine: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V, &S::V) -> S::V + Sync,
{
    match (t1, t2) {
        (None, _) | (_, None) => None,
        (Some(n1), Some(n2)) => {
            let cap = B::LEAF_CAP;
            if n1.size_of() <= cap && n2.size_of() <= cap {
                return merge_blocks(
                    Some(n1),
                    Some(n2),
                    MergeKeep {
                        left: false,
                        right: false,
                    },
                    &|v1, v2| Some(combine(v1, v2)),
                );
            }
            let work = n1.size_of() + n2.size_of();
            let (l2, e2, _m, r2) = expose(n2);
            let (l1, v1, r1) = split(Some(n1), &e2.key);
            let (l, r) = par2_if(
                work > granularity(),
                move || intersect(l1, l2, combine),
                move || intersect(r1, r2, combine),
            );
            match v1 {
                Some(v1) => {
                    let val = combine(&v1, &e2.val);
                    join_tree(
                        l,
                        EntryOwned {
                            key: e2.key,
                            val,
                            em: e2.em,
                        },
                        r,
                    )
                }
                None => join2(l, r),
            }
        }
    }
}

/// Difference `t1 \ t2`: the entries of `t1` whose keys are absent from `t2`.
pub fn difference<S, B>(t1: Tree<S, B>, t2: Tree<S, B>) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
{
    match (t1, t2) {
        (None, _) => None,
        (t1, None) => t1,
        (Some(n1), Some(n2)) => {
            let cap = B::LEAF_CAP;
            if n1.size_of() <= cap && n2.size_of() <= cap {
                return merge_blocks(
                    Some(n1),
                    Some(n2),
                    MergeKeep {
                        left: true,
                        right: false,
                    },
                    &|_, _| None,
                );
            }
            let work = n1.size_of() + n2.size_of();
            let (l2, e2, _m, r2) = expose(n2);
            let (l1, _v1, r1) = split(Some(n1), &e2.key);
            drop(e2);
            let (l, r) = par2_if(
                work > granularity(),
                move || difference(l1, l2),
                move || difference(r1, r2),
            );
            join2(l, r)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    #[test]
    fn union_with_empty_is_identity() {
        let m = M::build((0..100u64).map(|i| (i, i)).collect());
        let u = m.clone().union_with(M::new(), |_, _| unreachable!());
        assert_eq!(u.to_vec(), m.to_vec());
        let u = M::new().union_with(m.clone(), |_, _| unreachable!());
        assert_eq!(u.to_vec(), m.to_vec());
    }

    #[test]
    fn union_combine_argument_order() {
        // combine(v1, v2): v1 from the receiver, v2 from the argument
        let a = M::singleton(5, 100);
        let b = M::singleton(5, 1);
        let u = a.union_with(b, |x, y| x * 2 + y); // 100*2 + 1
        assert_eq!(u.get(&5), Some(&201));
    }

    #[test]
    fn intersect_empty_and_disjoint() {
        let a = M::build((0..100u64).map(|i| (i * 2, i)).collect());
        let b = M::build((0..100u64).map(|i| (i * 2 + 1, i)).collect());
        assert!(a.clone().intersect_with(M::new(), |x, _| *x).is_empty());
        assert!(a.intersect_with(b, |x, _| *x).is_empty());
    }

    #[test]
    fn difference_disjoint_and_total() {
        let a = M::build((0..100u64).map(|i| (i, i)).collect());
        let b = M::build((50..150u64).map(|i| (i, i)).collect());
        let d = a.clone().difference(b);
        assert_eq!(d.len(), 50);
        assert_eq!(d.last().map(|(k, _)| *k), Some(49));
        // self-difference is empty
        assert!(a.clone().difference(a).is_empty());
    }

    #[test]
    fn set_algebra_sizes() {
        // |A ∪ B| = |A| + |B| - |A ∩ B|
        let a = M::build((0..200u64).map(|i| (i * 3, 1)).collect());
        let b = M::build((0..200u64).map(|i| (i * 5, 1)).collect());
        let u = a.clone().union_with(b.clone(), |x, y| x + y).len();
        let i = a.clone().intersect_with(b.clone(), |x, y| x + y).len();
        assert_eq!(u, a.len() + b.len() - i);
        // |A \ B| = |A| - |A ∩ B|
        assert_eq!(a.clone().difference(b).len(), a.len() - i);
    }

    #[test]
    fn interleaved_unions_stay_valid() {
        // forces the block-merge bottom at many boundaries
        let a = M::build((0..500u64).map(|i| (i * 2, 1)).collect());
        let b = M::build((0..500u64).map(|i| (i * 2 + 1, 2)).collect());
        let u = a.clone().union_with(b.clone(), |x, y| x + y);
        u.check_invariants().unwrap();
        assert_eq!(u.len(), 1000);
        let i = u.clone().intersect_with(a.clone(), |x, _| *x);
        i.check_invariants().unwrap();
        assert_eq!(i.len(), 500);
        let d = u.difference(b);
        d.check_invariants().unwrap();
        assert_eq!(d.to_vec(), a.to_vec());
    }
}
