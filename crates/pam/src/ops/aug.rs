//! The augmented operations — the functions below the dashed line in
//! Figure 1 of the paper. These are what the maintained partial sums buy:
//! range sums in O(log n), filtered extraction in O(k log(n/k + 1)), and
//! monoid projections of augmented values.
//!
//! With blocked leaves each query bottoms out with one binary search in a
//! block and a fold of `g` over the in-range prefix/suffix — O(log n + B)
//! per query.

use crate::balance::{join_tree, Balance};
use crate::node::{expose, take_leaf_entries, EntryOwned, Node, Tree};
use crate::ops::split::join2;
use crate::spec::AugSpec;
use parlay::{granularity, par2_if};
use std::cmp::Ordering;

/// Fold `g` over a slice of leaf entries; `None` when empty.
fn fold_slice<S: AugSpec, B: Balance>(entries: &[EntryOwned<S, B>]) -> Option<S::A> {
    if entries.is_empty() {
        None
    } else {
        Some(S::fold_block(entries.iter().map(|e| (&e.key, &e.val))))
    }
}

/// Augmented value of all entries with keys `<= k` (the paper's
/// `augLeft`, Figure 2). O(log n).
pub fn aug_left<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> S::A {
    left_rec(t, k).unwrap_or_else(S::identity)
}

fn left_rec<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> Option<S::A> {
    let n = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let idx = l
                .entries()
                .partition_point(|e| S::compare(&e.key, k) != Ordering::Greater);
            fold_slice(&l.entries()[..idx])
        }
        Node::Internal(x) => {
            if S::compare(k, &x.key) == Ordering::Less {
                left_rec(&x.left, k)
            } else {
                // whole left subtree + root count; recurse right
                let mid = S::base(&x.key, &x.val);
                let lm = match x.left.as_deref() {
                    Some(l) => S::combine(l.aug(), &mid),
                    None => mid,
                };
                Some(match left_rec(&x.right, k) {
                    Some(r) => S::combine(&lm, &r),
                    None => lm,
                })
            }
        }
    }
}

/// Augmented value of all entries with keys `>= k` (the mirror of
/// [`aug_left`]; the paper calls the pair `augLeft`/`downTo` sums). O(log n).
pub fn aug_right<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> S::A {
    right_rec(t, k).unwrap_or_else(S::identity)
}

fn right_rec<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> Option<S::A> {
    let n = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let idx = l
                .entries()
                .partition_point(|e| S::compare(&e.key, k) == Ordering::Less);
            fold_slice(&l.entries()[idx..])
        }
        Node::Internal(x) => {
            if S::compare(k, &x.key) == Ordering::Greater {
                right_rec(&x.right, k)
            } else {
                let mid = S::base(&x.key, &x.val);
                let mr = match x.right.as_deref() {
                    Some(r) => S::combine(&mid, r.aug()),
                    None => mid,
                };
                Some(match right_rec(&x.left, k) {
                    Some(l) => S::combine(&l, &mr),
                    None => mr,
                })
            }
        }
    }
}

/// Augmented value of all entries with keys in `[lo, hi]` — equivalent to
/// `augVal(range(m, lo, hi))` but O(log n) with no allocation.
pub fn aug_range<S: AugSpec, B: Balance>(t: &Tree<S, B>, lo: &S::K, hi: &S::K) -> S::A {
    range_rec(t, lo, hi).unwrap_or_else(S::identity)
}

fn range_rec<S: AugSpec, B: Balance>(t: &Tree<S, B>, lo: &S::K, hi: &S::K) -> Option<S::A> {
    let n = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let from = l
                .entries()
                .partition_point(|e| S::compare(&e.key, lo) == Ordering::Less);
            let to = l
                .entries()
                .partition_point(|e| S::compare(&e.key, hi) != Ordering::Greater);
            fold_slice(&l.entries()[from..to.max(from)])
        }
        Node::Internal(x) => {
            if S::compare(&x.key, lo) == Ordering::Less {
                return range_rec(&x.right, lo, hi);
            }
            if S::compare(&x.key, hi) == Ordering::Greater {
                return range_rec(&x.left, lo, hi);
            }
            // lo <= key <= hi: sum = (left >= lo) + g(k,v) + (right <= hi)
            let mid = S::base(&x.key, &x.val);
            let lm = match right_rec(&x.left, lo) {
                Some(l) => S::combine(&l, &mid),
                None => mid,
            };
            Some(match left_rec(&x.right, hi) {
                Some(r) => S::combine(&lm, &r),
                None => lm,
            })
        }
    }
}

/// The paper's `augProject(g', f', m, k1, k2)`: equivalent to
/// `g'(augRange(m, k1, k2))` when `f'(g'(a), g'(b)) = g'(f(a, b))`, but it
/// projects each of the O(log n) canonical subtrees of the range through
/// `g'` *before* combining with `f'`. When `A` is a large structure (the
/// range tree's inner maps) this avoids materializing any combined `A`.
pub fn aug_project<S, B, T, G, F2>(
    t: &Tree<S, B>,
    lo: &S::K,
    hi: &S::K,
    project: &G,
    reduce: &F2,
    id: T,
) -> T
where
    S: AugSpec,
    B: Balance,
    G: Fn(&S::A) -> T,
    F2: Fn(T, T) -> T,
{
    match project_range(t, lo, hi, project, reduce) {
        Some(v) => v,
        None => id,
    }
}

/// Project each in-range entry of a leaf slice through `g ∘ base` and
/// fold with `f2`; `None` when the slice is empty.
fn project_slice<S, B, T, G, F2>(entries: &[EntryOwned<S, B>], g2: &G, f2: &F2) -> Option<T>
where
    S: AugSpec,
    B: Balance,
    G: Fn(&S::A) -> T,
    F2: Fn(T, T) -> T,
{
    let mut it = entries.iter();
    let first = it.next()?;
    let mut acc = g2(&S::base(&first.key, &first.val));
    for e in it {
        acc = f2(acc, g2(&S::base(&e.key, &e.val)));
    }
    Some(acc)
}

fn project_range<S, B, T, G, F2>(t: &Tree<S, B>, lo: &S::K, hi: &S::K, g2: &G, f2: &F2) -> Option<T>
where
    S: AugSpec,
    B: Balance,
    G: Fn(&S::A) -> T,
    F2: Fn(T, T) -> T,
{
    let n = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let from = l
                .entries()
                .partition_point(|e| S::compare(&e.key, lo) == Ordering::Less);
            let to = l
                .entries()
                .partition_point(|e| S::compare(&e.key, hi) != Ordering::Greater);
            project_slice(&l.entries()[from..to.max(from)], g2, f2)
        }
        Node::Internal(x) => {
            if S::compare(&x.key, lo) == Ordering::Less {
                return project_range(&x.right, lo, hi, g2, f2);
            }
            if S::compare(&x.key, hi) == Ordering::Greater {
                return project_range(&x.left, lo, hi, g2, f2);
            }
            let mid = g2(&S::base(&x.key, &x.val));
            let lm = match project_ge(&x.left, lo, g2, f2) {
                Some(l) => f2(l, mid),
                None => mid,
            };
            Some(match project_le(&x.right, hi, g2, f2) {
                Some(r) => f2(lm, r),
                None => lm,
            })
        }
    }
}

fn project_ge<S, B, T, G, F2>(t: &Tree<S, B>, lo: &S::K, g2: &G, f2: &F2) -> Option<T>
where
    S: AugSpec,
    B: Balance,
    G: Fn(&S::A) -> T,
    F2: Fn(T, T) -> T,
{
    let n = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let idx = l
                .entries()
                .partition_point(|e| S::compare(&e.key, lo) == Ordering::Less);
            project_slice(&l.entries()[idx..], g2, f2)
        }
        Node::Internal(x) => {
            if S::compare(&x.key, lo) == Ordering::Less {
                return project_ge(&x.right, lo, g2, f2);
            }
            let mid = g2(&S::base(&x.key, &x.val));
            let mr = match x.right.as_deref() {
                Some(r) => f2(mid, g2(r.aug())),
                None => mid,
            };
            Some(match project_ge(&x.left, lo, g2, f2) {
                Some(l) => f2(l, mr),
                None => mr,
            })
        }
    }
}

fn project_le<S, B, T, G, F2>(t: &Tree<S, B>, hi: &S::K, g2: &G, f2: &F2) -> Option<T>
where
    S: AugSpec,
    B: Balance,
    G: Fn(&S::A) -> T,
    F2: Fn(T, T) -> T,
{
    let n = t.as_deref()?;
    match n {
        Node::Leaf(l) => {
            let to = l
                .entries()
                .partition_point(|e| S::compare(&e.key, hi) != Ordering::Greater);
            project_slice(&l.entries()[..to], g2, f2)
        }
        Node::Internal(x) => {
            if S::compare(&x.key, hi) == Ordering::Greater {
                return project_le(&x.left, hi, g2, f2);
            }
            let mid = g2(&S::base(&x.key, &x.val));
            let lm = match x.left.as_deref() {
                Some(l) => f2(g2(l.aug()), mid),
                None => mid,
            };
            Some(match project_le(&x.right, hi, g2, f2) {
                Some(r) => f2(lm, r),
                None => lm,
            })
        }
    }
}

/// [`aug_filter`] extended with the paper's footnote 3 optimization:
/// *"Similar methodology can be applied if there exists a function h''
/// to decide if all entries in a subtree will be selected just by
/// reading the augmented value."*
///
/// `h_all(aug) == true` must imply every entry of that subtree satisfies
/// the filter; such subtrees are returned **whole** (zero copying, full
/// sharing), in addition to pruning subtrees failing `h_any`. For
/// min/max augmentations both directions come for free (e.g. keep
/// values > θ: `h_any = max > θ`, `h_all = min > θ` with a (min,max)
/// pair augmentation).
pub fn aug_filter_with_all<S, B, HAny, HAll>(
    t: Tree<S, B>,
    h_any: &HAny,
    h_all: &HAll,
) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    HAny: Fn(&S::A) -> bool + Sync,
    HAll: Fn(&S::A) -> bool + Sync,
{
    match t {
        None => None,
        Some(n) => {
            if !h_any(n.aug()) {
                return None; // nothing below matches
            }
            if h_all(n.aug()) {
                return Some(n); // everything below matches: share as-is
            }
            if n.is_leaf() {
                let mut entries = take_leaf_entries(n);
                entries.retain(|e| h_any(&S::base(&e.key, &e.val)));
                return crate::balance::from_sorted_entries::<S, B>(entries);
            }
            let work = n.size_of();
            let (l, e, _m, r) = expose(n);
            let keep = h_any(&S::base(&e.key, &e.val));
            let (l2, r2) = par2_if(
                work > granularity(),
                move || aug_filter_with_all(l, h_any, h_all),
                move || aug_filter_with_all(r, h_any, h_all),
            );
            if keep {
                join_tree(l2, e, r2)
            } else {
                join2(l2, r2)
            }
        }
    }
}

/// The paper's `augFilter(h, m)` (Figure 2): equivalent to filtering with
/// `h'(k,v) ⇔ h(g(k,v))`, valid only when `h(a) ∨ h(b) ⇔ h(f(a,b))` —
/// then a subtree whose augmented value fails `h` contains no matching
/// entry and is pruned wholesale. O(k log(n/k + 1)) work for k results.
pub fn aug_filter<S, B, H>(t: Tree<S, B>, h: &H) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    H: Fn(&S::A) -> bool + Sync,
{
    match t {
        None => None,
        Some(n) => {
            if !h(n.aug()) {
                return None; // prune: nothing below can match
            }
            if n.is_leaf() {
                let mut entries = take_leaf_entries(n);
                entries.retain(|e| h(&S::base(&e.key, &e.val)));
                return crate::balance::from_sorted_entries::<S, B>(entries);
            }
            let work = n.size_of();
            let (l, e, _m, r) = expose(n);
            let keep = h(&S::base(&e.key, &e.val));
            let (l2, r2) = par2_if(
                work > granularity(),
                move || aug_filter(l, h),
                move || aug_filter(r, h),
            );
            if keep {
                join_tree(l2, e, r2)
            } else {
                join2(l2, r2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::{MaxAug, SumAug};
    use crate::AugMap;

    type Sum = AugMap<SumAug<u64, u64>>;
    type Max = AugMap<MaxAug<u64, i64>>;

    #[test]
    fn aug_left_right_on_empty_yield_identity() {
        let e = Sum::new();
        assert_eq!(e.aug_left(&5), 0);
        assert_eq!(e.aug_right(&5), 0);
        assert_eq!(e.aug_range(&1, &9), 0);
        let em = Max::new();
        assert_eq!(em.aug_left(&5), i64::MIN);
    }

    #[test]
    fn aug_left_is_inclusive() {
        let m = Sum::build(vec![(10, 1), (20, 2), (30, 4)]);
        assert_eq!(m.aug_left(&9), 0);
        assert_eq!(m.aug_left(&10), 1); // key 10 included
        assert_eq!(m.aug_left(&29), 3);
        assert_eq!(m.aug_left(&30), 7);
        assert_eq!(m.aug_right(&20), 6); // keys >= 20
    }

    #[test]
    fn aug_range_single_key_and_miss() {
        let m = Sum::build(vec![(10, 1), (20, 2), (30, 4)]);
        assert_eq!(m.aug_range(&20, &20), 2);
        assert_eq!(m.aug_range(&11, &19), 0);
        assert_eq!(m.aug_range(&0, &100), 7);
    }

    #[test]
    fn aug_queries_inside_blocks_match_brute_force() {
        // keys 0,2,4,..., sums checked against a direct fold at offsets
        // that land strictly inside leaf blocks
        let m = Sum::build((0..500u64).map(|i| (i * 2, i)).collect());
        let brute = |lo: u64, hi: u64| -> u64 {
            (0..500u64)
                .filter(|i| i * 2 >= lo && i * 2 <= hi)
                .sum::<u64>()
        };
        for (lo, hi) in [(0u64, 998u64), (1, 13), (37, 41), (500, 501), (998, 998)] {
            assert_eq!(m.aug_range(&lo, &hi), brute(lo, hi), "[{lo},{hi}]");
        }
        for k in [0u64, 1, 63, 64, 997, 998, 1000] {
            assert_eq!(m.aug_left(&k), brute(0, k), "<= {k}");
            assert_eq!(m.aug_right(&k), brute(k, 1000), ">= {k}");
        }
    }

    #[test]
    fn aug_project_respects_homomorphism() {
        // project sums to their parity: g'(a) = a % 2 is a monoid
        // homomorphism from (+) to (+ mod 2)
        let m = Sum::build((0..100u64).map(|i| (i, i)).collect());
        for (lo, hi) in [(0u64, 99u64), (10, 11), (5, 60)] {
            let direct = m.aug_range(&lo, &hi) % 2;
            let proj = m.aug_project(&lo, &hi, |a| a % 2, |x, y| (x + y) % 2, 0);
            assert_eq!(proj, direct);
        }
    }

    #[test]
    fn aug_filter_on_max_keeps_exactly_matching() {
        let m = Max::build(
            (0..1000u64)
                .map(|i| (i, (i as i64 * 7919) % 1000))
                .collect(),
        );
        let kept = m.aug_filter(|&a| a >= 995);
        assert!(kept.iter().all(|(_, &v)| v >= 995));
        let brute = m
            .iter()
            .filter(|(_, &v)| v >= 995)
            .map(|(&k, &v)| (k, v))
            .collect::<Vec<_>>();
        assert_eq!(kept.to_vec(), brute);
        // filter that rejects the root aug prunes everything instantly
        assert!(m.aug_filter(|&a| a > 10_000).is_empty());
    }
}
