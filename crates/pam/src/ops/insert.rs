//! Point updates (`insert`, `delete`), defined "purely based on JOIN, and
//! hence independent of the balancing scheme" (§4, Figure 2).
//!
//! With blocked leaves the descent bottoms out at a block: the update is a
//! binary search plus an O(LEAF_CAP) vector edit, and the re-pack
//! machinery in [`crate::balance`] restores the fill invariants (an
//! overflowing block splits at its median; an underfull one merges into a
//! neighbor through the parent's re-joining).

use crate::balance::{from_sorted_entries, join_tree, singleton, Balance};
use crate::node::{expose, take_leaf_entries, EntryOwned, Tree};
use crate::ops::split::join2;
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// Insert `(k, v)`. If `k` is already present its value becomes
/// `combine(old, new)` — the paper's extra argument `h` to INSERT.
/// O(log n).
pub fn insert<S, B, F>(t: Tree<S, B>, k: S::K, v: S::V, combine: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V, &S::V) -> S::V,
{
    match t {
        None => singleton::<S, B>(k, v),
        Some(n) if n.is_leaf() => {
            let mut entries = take_leaf_entries(n);
            match entries.binary_search_by(|x| S::compare(&x.key, &k)) {
                Ok(i) => {
                    entries[i].val = combine(&entries[i].val, &v);
                }
                Err(i) => entries.insert(
                    i,
                    EntryOwned {
                        key: k,
                        val: v,
                        em: B::fresh_entry_meta(),
                    },
                ),
            }
            // up to LEAF_CAP + 1 entries: re-packs into one leaf or splits
            // at the median into two half-full ones
            from_sorted_entries::<S, B>(entries)
        }
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            match S::compare(&k, &e.key) {
                Ordering::Less => join_tree(insert::<S, B, F>(l, k, v, combine), e, r),
                Ordering::Greater => join_tree(l, e, insert::<S, B, F>(r, k, v, combine)),
                Ordering::Equal => {
                    let val = combine(&e.val, &v);
                    join_tree(
                        l,
                        EntryOwned {
                            key: e.key,
                            val,
                            em: e.em,
                        },
                        r,
                    )
                }
            }
        }
    }
}

/// Update the value at `k` in place (structurally: via path copy):
/// `f(&old)` returning `None` deletes the entry, `Some(v)` replaces it.
/// No-op if `k` is absent. O(log n).
pub fn update<S, B, F>(t: Tree<S, B>, k: &S::K, f: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V) -> Option<S::V>,
{
    match t {
        None => None,
        Some(n) if n.is_leaf() => {
            let mut entries = take_leaf_entries(n);
            if let Ok(i) = entries.binary_search_by(|x| S::compare(&x.key, k)) {
                match f(&entries[i].val) {
                    Some(val) => entries[i].val = val,
                    None => {
                        entries.remove(i);
                    }
                }
            }
            from_sorted_entries::<S, B>(entries)
        }
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            match S::compare(k, &e.key) {
                Ordering::Less => join_tree(update(l, k, f), e, r),
                Ordering::Greater => join_tree(l, e, update(r, k, f)),
                Ordering::Equal => match f(&e.val) {
                    Some(val) => join_tree(
                        l,
                        EntryOwned {
                            key: e.key,
                            val,
                            em: e.em,
                        },
                        r,
                    ),
                    None => join2(l, r),
                },
            }
        }
    }
}

/// Remove the entry at `k` (no-op if absent). O(log n).
pub fn delete<S: AugSpec, B: Balance>(t: Tree<S, B>, k: &S::K) -> Tree<S, B> {
    match t {
        None => None,
        Some(n) if n.is_leaf() => {
            let mut entries = take_leaf_entries(n);
            if let Ok(i) = entries.binary_search_by(|x| S::compare(&x.key, k)) {
                entries.remove(i);
            }
            // a now-underfull block is re-merged by the parent's join
            from_sorted_entries::<S, B>(entries)
        }
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            match S::compare(k, &e.key) {
                Ordering::Less => join_tree(delete(l, k), e, r),
                Ordering::Greater => join_tree(l, e, delete(r, k)),
                Ordering::Equal => join2(l, r),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    #[test]
    fn insert_into_empty_then_delete_back() {
        let mut m = M::new();
        m.insert(5, 50);
        assert_eq!(m.len(), 1);
        m.remove(&5);
        assert!(m.is_empty());
        m.remove(&5); // no-op on empty
        assert!(m.is_empty());
    }

    #[test]
    fn insert_with_combine_receives_old_then_new() {
        let mut m = M::singleton(1, 7);
        m.insert_with(1, 2, |old, new| old * 100 + new);
        assert_eq!(m.get(&1), Some(&702));
    }

    #[test]
    fn ascending_descending_insertions_stay_balanced() {
        let mut m = M::new();
        for i in 0..2000u64 {
            m.insert(i, i);
        }
        for i in (2000..4000u64).rev() {
            m.insert(i, i);
        }
        m.check_invariants().unwrap();
        assert_eq!(m.len(), 4000);
    }

    #[test]
    fn interleaved_insert_delete_keeps_fill_invariants() {
        let mut m = M::new();
        for i in 0..1000u64 {
            m.insert((i * 7919) % 1000, i);
        }
        m.check_invariants().unwrap();
        for i in 0..500u64 {
            m.remove(&((i * 13) % 1000));
        }
        m.check_invariants().unwrap();
        for i in 0..1000u64 {
            m.update(&i, |v| if v % 2 == 0 { Some(v + 1) } else { None });
        }
        m.check_invariants().unwrap();
    }
}
