//! Tree-level algorithms, written once against [`crate::balance::Balance::join`].
//!
//! Everything here follows the paper's Figure 2 pseudocode. Functions that
//! *produce* trees take their inputs **by value** (an `Arc` clone of a root
//! is O(1), and passing ownership is what enables the refcount-1 reuse
//! optimization); pure queries borrow.
//!
//! These free functions are the low-level interface; most users want the
//! [`crate::AugMap`] wrapper.

pub mod aug;
pub mod basic;
pub mod build;
pub mod filter;
pub mod insert;
pub mod mapreduce;
pub mod range;
pub mod setops;
pub mod split;
pub mod topk;

pub use aug::{aug_filter, aug_filter_with_all, aug_left, aug_project, aug_range, aug_right};
pub use basic::{contains, find, first, last, next, previous, rank, select};
pub use build::{build, from_sorted_distinct, multi_delete, multi_insert};
pub use filter::filter;
pub use insert::{delete, insert, update};
pub use mapreduce::{filter_map_values, for_each, keys, map_reduce, map_values, to_vec, values};
pub use range::{down_to, range, up_to};
pub use setops::{difference, intersect, union};
pub use split::{join2, split, split_first, split_last, split_rank};
pub use topk::top_k_by;
