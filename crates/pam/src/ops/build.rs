//! Bulk construction and bulk updates.
//!
//! `build` is the paper's BUILD (Figure 2): parallel sort, combine
//! duplicates (contiguous after sorting), then a balanced
//! divide-and-conquer of `join`s. Work O(n log n), span O(log n) given the
//! sort. `multi_insert`/`multi_delete` recursively partition the sorted
//! batch around the tree root, descending both sides in parallel — PAM's
//! mechanism for applying accumulated concurrent updates in bulk (§4,
//! Concurrency). Both bottom out at leaf blocks with a linear sorted
//! merge of the batch slice into the block.

use crate::balance::{from_sorted_entries, join_tree, Balance};
use crate::node::{expose, take_leaf_entries, EntryOwned, Node, Tree};
use crate::ops::split::join2;
use crate::spec::AugSpec;
use parlay::{granularity, par2_if};
use std::cmp::Ordering;

/// Construct a map from an unsorted sequence of key-value pairs. Values of
/// duplicate keys are merged left-to-right with `combine` (in input
/// order, because the sort is stable).
pub fn build<S, B, F>(mut items: Vec<(S::K, S::V)>, combine: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V, &S::V) -> S::V + Sync,
{
    parlay::par_sort_by(&mut items, |a, b| S::compare(&a.0, &b.0));
    let items = parlay::combine_duplicates_by(
        items,
        |a, b| S::compare(&a.0, &b.0) == Ordering::Equal,
        |a, b| (a.0.clone(), combine(&a.1, &b.1)),
    );
    from_sorted_distinct::<S, B>(&items)
}

/// Construct a map from a slice already sorted by key with distinct keys.
/// Work O(n) joins (each O(1) amortized on balanced halves), span O(log n).
pub fn from_sorted_distinct<S, B>(items: &[(S::K, S::V)]) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
{
    if items.is_empty() {
        return None;
    }
    debug_assert!(items
        .windows(2)
        .all(|w| S::compare(&w[0].0, &w[1].0) == Ordering::Less));
    build_rec::<S, B>(items)
}

fn owned_entry<S: AugSpec, B: Balance>(item: &(S::K, S::V)) -> EntryOwned<S, B> {
    EntryOwned {
        key: item.0.clone(),
        val: item.1.clone(),
        em: B::fresh_entry_meta(),
    }
}

fn build_rec<S: AugSpec, B: Balance>(items: &[(S::K, S::V)]) -> Tree<S, B> {
    if items.is_empty() {
        return None;
    }
    if items.len() <= B::LEAF_CAP.max(1) {
        // bottom out with one full block (median recursion keeps every
        // non-root block at least half full)
        return Some(Node::make_leaf(items.iter().map(owned_entry).collect()));
    }
    let mid = items.len() / 2;
    let (l, r) = par2_if(
        items.len() > granularity(),
        || build_rec::<S, B>(&items[..mid]),
        || build_rec::<S, B>(&items[mid + 1..]),
    );
    join_tree(l, owned_entry(&items[mid]), r)
}

/// Insert a whole batch. Existing values are merged with
/// `combine(old, new)`; duplicate keys within the batch are merged
/// left-to-right first.
pub fn multi_insert<S, B, F>(t: Tree<S, B>, mut batch: Vec<(S::K, S::V)>, combine: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V, &S::V) -> S::V + Sync,
{
    parlay::par_sort_by(&mut batch, |a, b| S::compare(&a.0, &b.0));
    let batch = parlay::combine_duplicates_by(
        batch,
        |a, b| S::compare(&a.0, &b.0) == Ordering::Equal,
        |a, b| (a.0.clone(), combine(&a.1, &b.1)),
    );
    multi_insert_sorted::<S, B, F>(t, &batch, combine)
}

fn multi_insert_sorted<S, B, F>(t: Tree<S, B>, batch: &[(S::K, S::V)], combine: &F) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    F: Fn(&S::V, &S::V) -> S::V + Sync,
{
    if batch.is_empty() {
        return t;
    }
    match t {
        None => from_sorted_distinct::<S, B>(batch),
        Some(n) if n.is_leaf() => {
            // sorted merge of the batch into the block, then re-pack
            let entries = take_leaf_entries(n);
            let mut out = Vec::with_capacity(entries.len() + batch.len());
            let mut bi = 0;
            for e in entries {
                while bi < batch.len() && S::compare(&batch[bi].0, &e.key) == Ordering::Less {
                    out.push(owned_entry(&batch[bi]));
                    bi += 1;
                }
                if bi < batch.len() && S::compare(&batch[bi].0, &e.key) == Ordering::Equal {
                    out.push(EntryOwned {
                        val: combine(&e.val, &batch[bi].1),
                        key: e.key,
                        em: e.em,
                    });
                    bi += 1;
                } else {
                    out.push(e);
                }
            }
            out.extend(batch[bi..].iter().map(owned_entry));
            from_sorted_entries::<S, B>(out)
        }
        Some(n) => {
            let work = n.size_of() + batch.len();
            let (l, e, _m, r) = expose(n);
            let lo = batch.partition_point(|x| S::compare(&x.0, &e.key) == Ordering::Less);
            let found = lo < batch.len() && S::compare(&batch[lo].0, &e.key) == Ordering::Equal;
            let hi = lo + usize::from(found);
            let (bl, br) = (&batch[..lo], &batch[hi..]);
            let (l2, r2) = par2_if(
                work > granularity(),
                move || multi_insert_sorted::<S, B, F>(l, bl, combine),
                move || multi_insert_sorted::<S, B, F>(r, br, combine),
            );
            let val = if found {
                combine(&e.val, &batch[lo].1)
            } else {
                e.val
            };
            join_tree(
                l2,
                EntryOwned {
                    key: e.key,
                    val,
                    em: e.em,
                },
                r2,
            )
        }
    }
}

/// Delete a whole batch of keys (absent keys are ignored).
pub fn multi_delete<S, B>(t: Tree<S, B>, mut keys: Vec<S::K>) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
{
    parlay::par_sort_by(&mut keys, |a, b| S::compare(a, b));
    keys.dedup_by(|a, b| S::compare(a, b) == Ordering::Equal);
    multi_delete_sorted::<S, B>(t, &keys)
}

fn multi_delete_sorted<S, B>(t: Tree<S, B>, keys: &[S::K]) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
{
    if keys.is_empty() {
        return t;
    }
    match t {
        None => None,
        Some(n) if n.is_leaf() => {
            let entries = take_leaf_entries(n);
            let mut ki = 0;
            let out: Vec<_> = entries
                .into_iter()
                .filter(|e| {
                    while ki < keys.len() && S::compare(&keys[ki], &e.key) == Ordering::Less {
                        ki += 1;
                    }
                    !(ki < keys.len() && S::compare(&keys[ki], &e.key) == Ordering::Equal)
                })
                .collect();
            from_sorted_entries::<S, B>(out)
        }
        Some(n) => {
            let work = n.size_of() + keys.len();
            let (l, e, _m, r) = expose(n);
            let lo = keys.partition_point(|x| S::compare(x, &e.key) == Ordering::Less);
            let found = lo < keys.len() && S::compare(&keys[lo], &e.key) == Ordering::Equal;
            let hi = lo + usize::from(found);
            let (kl, kr) = (&keys[..lo], &keys[hi..]);
            let (l2, r2) = par2_if(
                work > granularity(),
                move || multi_delete_sorted::<S, B>(l, kl),
                move || multi_delete_sorted::<S, B>(r, kr),
            );
            if found {
                join2(l2, r2)
            } else {
                join_tree(l2, e, r2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    #[test]
    fn build_with_combines_in_input_order() {
        // non-commutative combine proves left-to-right merging
        let m: AugMap<crate::spec::SumAug<u64, u64>> =
            AugMap::build_with(vec![(1, 3), (1, 4), (1, 5)], |a, b| a * 10 + b);
        assert_eq!(m.get(&1), Some(&345));
    }

    #[test]
    fn from_sorted_distinct_matches_build() {
        let sorted: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * 2, i)).collect();
        let a = M::from_sorted_distinct(&sorted);
        let b = M::build(sorted.clone());
        assert_eq!(a.to_vec(), b.to_vec());
        a.check_invariants().unwrap();
    }

    #[test]
    fn multi_insert_on_empty_builds() {
        let mut m = M::new();
        m.multi_insert(vec![(3, 30), (1, 10), (2, 20)]);
        assert_eq!(m.to_vec(), vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn multi_insert_batch_duplicates_merge_first() {
        let mut m = M::singleton(5, 100);
        // batch has duplicate key 5 twice: merged left-to-right, then
        // combined with the existing value
        m.multi_insert_with(vec![(5, 1), (5, 2)], |old, new| old + new);
        assert_eq!(m.get(&5), Some(&103));
    }

    #[test]
    fn multi_delete_ignores_missing() {
        let mut m = M::build((0..100u64).map(|i| (i, i)).collect());
        m.multi_delete(vec![5, 5, 50, 500, 5000]);
        assert_eq!(m.len(), 98);
        assert!(!m.contains_key(&5));
        assert!(!m.contains_key(&50));
        m.check_invariants().unwrap();
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut m = M::build(vec![(1, 1)]);
        m.multi_insert(vec![]);
        m.multi_delete(vec![]);
        assert_eq!(m.len(), 1);
        let e = M::build(vec![]);
        assert!(e.is_empty());
    }

    #[test]
    fn batch_updates_interleaving_blocks_stay_valid() {
        let mut m = M::build((0..1000u64).map(|i| (i * 3, i)).collect());
        // batch interleaves between, before, and after existing blocks
        m.multi_insert((0..1000u64).map(|i| (i * 3 + 1, i)).collect());
        m.check_invariants().unwrap();
        assert_eq!(m.len(), 2000);
        m.multi_delete((0..2000u64).map(|i| i * 3).collect());
        m.check_invariants().unwrap();
        assert_eq!(m.len(), 1000);
    }
}
