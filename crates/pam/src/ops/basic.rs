//! Point queries: `find`, order statistics, neighbors. All O(log n),
//! borrowing (they never restructure the tree). Blocked leaves end the
//! descent with one binary search inside the block.

use crate::balance::Balance;
use crate::node::{EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// Binary-search a sorted block for `k`.
#[inline]
fn block_search<S: AugSpec, B: Balance>(
    entries: &[EntryOwned<S, B>],
    k: &S::K,
) -> Result<usize, usize> {
    entries.binary_search_by(|e| S::compare(&e.key, k))
}

/// Look up the value stored at `k`.
pub fn find<'a, S: AugSpec, B: Balance>(t: &'a Tree<S, B>, k: &S::K) -> Option<&'a S::V> {
    let mut cur = t;
    while let Some(n) = cur.as_deref() {
        match n {
            Node::Leaf(l) => {
                return block_search(l.entries(), k)
                    .ok()
                    .map(|i| &l.entries()[i].val)
            }
            Node::Internal(x) => match S::compare(k, &x.key) {
                Ordering::Equal => return Some(&x.val),
                Ordering::Less => cur = &x.left,
                Ordering::Greater => cur = &x.right,
            },
        }
    }
    None
}

/// Is `k` present?
pub fn contains<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> bool {
    find(t, k).is_some()
}

/// The minimum entry.
pub fn first<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Option<(&S::K, &S::V)> {
    let mut n: &Node<S, B> = t.as_deref()?;
    loop {
        match n {
            Node::Leaf(l) => {
                let e = &l.entries()[0];
                return Some((&e.key, &e.val));
            }
            Node::Internal(x) => match x.left.as_deref() {
                Some(l) => n = l,
                None => return Some((&x.key, &x.val)),
            },
        }
    }
}

/// The maximum entry.
pub fn last<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Option<(&S::K, &S::V)> {
    let mut n: &Node<S, B> = t.as_deref()?;
    loop {
        match n {
            Node::Leaf(l) => {
                let e = l.entries().last().expect("leaf blocks are never empty");
                return Some((&e.key, &e.val));
            }
            Node::Internal(x) => match x.right.as_deref() {
                Some(r) => n = r,
                None => return Some((&x.key, &x.val)),
            },
        }
    }
}

/// The entry with the largest key strictly less than `k`.
pub fn previous<'a, S: AugSpec, B: Balance>(
    t: &'a Tree<S, B>,
    k: &S::K,
) -> Option<(&'a S::K, &'a S::V)> {
    let mut best: Option<(&S::K, &S::V)> = None;
    let mut cur = t;
    while let Some(n) = cur.as_deref() {
        match n {
            Node::Leaf(l) => {
                // index of the first key >= k: its predecessor (if any)
                // is the best in-block candidate
                let i = l
                    .entries()
                    .partition_point(|e| S::compare(&e.key, k) == Ordering::Less);
                if i > 0 {
                    let e = &l.entries()[i - 1];
                    best = Some((&e.key, &e.val));
                }
                return best;
            }
            Node::Internal(x) => {
                if S::compare(&x.key, k) == Ordering::Less {
                    best = Some((&x.key, &x.val));
                    cur = &x.right;
                } else {
                    cur = &x.left;
                }
            }
        }
    }
    best
}

/// The entry with the smallest key strictly greater than `k`.
pub fn next<'a, S: AugSpec, B: Balance>(
    t: &'a Tree<S, B>,
    k: &S::K,
) -> Option<(&'a S::K, &'a S::V)> {
    let mut best: Option<(&S::K, &S::V)> = None;
    let mut cur = t;
    while let Some(n) = cur.as_deref() {
        match n {
            Node::Leaf(l) => {
                let i = l
                    .entries()
                    .partition_point(|e| S::compare(&e.key, k) != Ordering::Greater);
                if i < l.entries().len() {
                    let e = &l.entries()[i];
                    best = Some((&e.key, &e.val));
                }
                return best;
            }
            Node::Internal(x) => {
                if S::compare(&x.key, k) == Ordering::Greater {
                    best = Some((&x.key, &x.val));
                    cur = &x.left;
                } else {
                    cur = &x.right;
                }
            }
        }
    }
    best
}

/// Number of entries with keys strictly less than `k`.
pub fn rank<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> usize {
    let mut acc = 0;
    let mut cur = t;
    while let Some(n) = cur.as_deref() {
        match n {
            Node::Leaf(l) => {
                return acc
                    + l.entries()
                        .partition_point(|e| S::compare(&e.key, k) == Ordering::Less)
            }
            Node::Internal(x) => match S::compare(k, &x.key) {
                Ordering::Equal => return acc + crate::node::size(&x.left),
                Ordering::Less => cur = &x.left,
                Ordering::Greater => {
                    acc += crate::node::size(&x.left) + 1;
                    cur = &x.right;
                }
            },
        }
    }
    acc
}

/// The `i`-th smallest entry (0-based), if `i < size`.
pub fn select<S: AugSpec, B: Balance>(t: &Tree<S, B>, mut i: usize) -> Option<(&S::K, &S::V)> {
    let mut cur = t;
    while let Some(n) = cur.as_deref() {
        match n {
            Node::Leaf(l) => {
                return l.entries().get(i).map(|e| (&e.key, &e.val));
            }
            Node::Internal(x) => {
                let ls = crate::node::size(&x.left);
                match i.cmp(&ls) {
                    Ordering::Less => cur = &x.left,
                    Ordering::Equal => return Some((&x.key, &x.val)),
                    Ordering::Greater => {
                        i -= ls + 1;
                        cur = &x.right;
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    fn m() -> M {
        M::build(vec![(10, 1), (20, 2), (30, 3), (40, 4)])
    }

    #[test]
    fn find_on_empty_and_miss() {
        let e = M::new();
        assert_eq!(e.get(&5), None);
        assert!(!e.contains_key(&5));
        assert_eq!(m().get(&15), None);
        assert_eq!(m().get(&20), Some(&2));
    }

    #[test]
    fn first_last_on_all_sizes() {
        assert_eq!(M::new().first(), None);
        assert_eq!(M::new().last(), None);
        let s = M::singleton(7, 70);
        assert_eq!(s.first(), Some((&7, &70)));
        assert_eq!(s.last(), Some((&7, &70)));
        assert_eq!(m().first(), Some((&10, &1)));
        assert_eq!(m().last(), Some((&40, &4)));
    }

    #[test]
    fn previous_next_strictness() {
        let m = m();
        // strictly-less / strictly-greater semantics
        assert_eq!(m.previous(&10), None);
        assert_eq!(m.previous(&11).map(|(k, _)| *k), Some(10));
        assert_eq!(m.previous(&40).map(|(k, _)| *k), Some(30));
        assert_eq!(m.next(&40), None);
        assert_eq!(m.next(&39).map(|(k, _)| *k), Some(40));
        assert_eq!(m.next(&0).map(|(k, _)| *k), Some(10));
    }

    #[test]
    fn rank_counts_strictly_smaller() {
        let m = m();
        assert_eq!(m.rank(&5), 0);
        assert_eq!(m.rank(&10), 0); // key itself not counted
        assert_eq!(m.rank(&11), 1);
        assert_eq!(m.rank(&40), 3);
        assert_eq!(m.rank(&100), 4);
    }

    #[test]
    fn select_is_inverse_of_rank() {
        let m = m();
        for i in 0..m.len() {
            let (k, _) = m.select(i).unwrap();
            assert_eq!(m.rank(k), i);
        }
        assert_eq!(m.select(4), None);
        assert_eq!(M::new().select(0), None);
    }

    #[test]
    fn queries_deep_in_big_blocks() {
        // spans multiple full blocks at every default capacity
        let m = M::build((0..500u64).map(|i| (i * 2, i)).collect());
        for i in 0..500u64 {
            assert_eq!(m.get(&(i * 2)), Some(&i));
            assert_eq!(m.get(&(i * 2 + 1)), None);
            assert_eq!(m.rank(&(i * 2)), i as usize);
            assert_eq!(m.select(i as usize).map(|(k, _)| *k), Some(i * 2));
        }
        assert_eq!(m.previous(&999).map(|(k, _)| *k), Some(998));
        assert_eq!(m.next(&0).map(|(k, _)| *k), Some(2));
    }
}
