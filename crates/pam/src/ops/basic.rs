//! Point queries: `find`, order statistics, neighbors. All O(log n),
//! borrowing (they never restructure the tree).

use crate::balance::Balance;
use crate::node::{Node, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// Look up the value stored at `k`.
pub fn find<'a, S: AugSpec, B: Balance>(t: &'a Tree<S, B>, k: &S::K) -> Option<&'a S::V> {
    let mut cur = t;
    while let Some(n) = cur {
        match S::compare(k, &n.key) {
            Ordering::Equal => return Some(&n.val),
            Ordering::Less => cur = &n.left,
            Ordering::Greater => cur = &n.right,
        }
    }
    None
}

/// Is `k` present?
pub fn contains<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> bool {
    find(t, k).is_some()
}

/// The minimum entry.
pub fn first<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Option<(&S::K, &S::V)> {
    let mut n: &Node<S, B> = t.as_deref()?;
    while let Some(l) = n.left.as_deref() {
        n = l;
    }
    Some((&n.key, &n.val))
}

/// The maximum entry.
pub fn last<S: AugSpec, B: Balance>(t: &Tree<S, B>) -> Option<(&S::K, &S::V)> {
    let mut n: &Node<S, B> = t.as_deref()?;
    while let Some(r) = n.right.as_deref() {
        n = r;
    }
    Some((&n.key, &n.val))
}

/// The entry with the largest key strictly less than `k`.
pub fn previous<'a, S: AugSpec, B: Balance>(
    t: &'a Tree<S, B>,
    k: &S::K,
) -> Option<(&'a S::K, &'a S::V)> {
    let mut best: Option<(&S::K, &S::V)> = None;
    let mut cur = t;
    while let Some(n) = cur {
        if S::compare(&n.key, k) == Ordering::Less {
            best = Some((&n.key, &n.val));
            cur = &n.right;
        } else {
            cur = &n.left;
        }
    }
    best
}

/// The entry with the smallest key strictly greater than `k`.
pub fn next<'a, S: AugSpec, B: Balance>(
    t: &'a Tree<S, B>,
    k: &S::K,
) -> Option<(&'a S::K, &'a S::V)> {
    let mut best: Option<(&S::K, &S::V)> = None;
    let mut cur = t;
    while let Some(n) = cur {
        if S::compare(&n.key, k) == Ordering::Greater {
            best = Some((&n.key, &n.val));
            cur = &n.left;
        } else {
            cur = &n.right;
        }
    }
    best
}

/// Number of entries with keys strictly less than `k`.
pub fn rank<S: AugSpec, B: Balance>(t: &Tree<S, B>, k: &S::K) -> usize {
    let mut acc = 0;
    let mut cur = t;
    while let Some(n) = cur {
        match S::compare(k, &n.key) {
            Ordering::Less | Ordering::Equal => {
                if S::compare(k, &n.key) == Ordering::Equal {
                    return acc + crate::node::size(&n.left);
                }
                cur = &n.left;
            }
            Ordering::Greater => {
                acc += crate::node::size(&n.left) + 1;
                cur = &n.right;
            }
        }
    }
    acc
}

/// The `i`-th smallest entry (0-based), if `i < size`.
pub fn select<S: AugSpec, B: Balance>(t: &Tree<S, B>, mut i: usize) -> Option<(&S::K, &S::V)> {
    let mut cur = t;
    while let Some(n) = cur {
        let ls = crate::node::size(&n.left);
        match i.cmp(&ls) {
            Ordering::Less => cur = &n.left,
            Ordering::Equal => return Some((&n.key, &n.val)),
            Ordering::Greater => {
                i -= ls + 1;
                cur = &n.right;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    fn m() -> M {
        M::build(vec![(10, 1), (20, 2), (30, 3), (40, 4)])
    }

    #[test]
    fn find_on_empty_and_miss() {
        let e = M::new();
        assert_eq!(e.get(&5), None);
        assert!(!e.contains_key(&5));
        assert_eq!(m().get(&15), None);
        assert_eq!(m().get(&20), Some(&2));
    }

    #[test]
    fn first_last_on_all_sizes() {
        assert_eq!(M::new().first(), None);
        assert_eq!(M::new().last(), None);
        let s = M::singleton(7, 70);
        assert_eq!(s.first(), Some((&7, &70)));
        assert_eq!(s.last(), Some((&7, &70)));
        assert_eq!(m().first(), Some((&10, &1)));
        assert_eq!(m().last(), Some((&40, &4)));
    }

    #[test]
    fn previous_next_strictness() {
        let m = m();
        // strictly-less / strictly-greater semantics
        assert_eq!(m.previous(&10), None);
        assert_eq!(m.previous(&11).map(|(k, _)| *k), Some(10));
        assert_eq!(m.previous(&40).map(|(k, _)| *k), Some(30));
        assert_eq!(m.next(&40), None);
        assert_eq!(m.next(&39).map(|(k, _)| *k), Some(40));
        assert_eq!(m.next(&0).map(|(k, _)| *k), Some(10));
    }

    #[test]
    fn rank_counts_strictly_smaller() {
        let m = m();
        assert_eq!(m.rank(&5), 0);
        assert_eq!(m.rank(&10), 0); // key itself not counted
        assert_eq!(m.rank(&11), 1);
        assert_eq!(m.rank(&40), 3);
        assert_eq!(m.rank(&100), 4);
    }

    #[test]
    fn select_is_inverse_of_rank() {
        let m = m();
        for i in 0..m.len() {
            let (k, _) = m.select(i).unwrap();
            assert_eq!(m.rank(k), i);
        }
        assert_eq!(m.select(4), None);
        assert_eq!(M::new().select(0), None);
    }
}
