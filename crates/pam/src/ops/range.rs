//! Range extraction: `up_to`, `down_to`, `range` — O(log n) each, returning
//! persistent sub-maps that share structure with the input. A leaf block is
//! truncated with one binary search and a slice copy.

use crate::balance::{join_tree, Balance};
use crate::node::{expose, take_leaf_entries, Node, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// Entries with keys `<= k`.
pub fn up_to<S: AugSpec, B: Balance>(t: Tree<S, B>, k: &S::K) -> Tree<S, B> {
    match t {
        None => None,
        Some(n) if n.is_leaf() => {
            let mut entries = take_leaf_entries(n);
            entries
                .truncate(entries.partition_point(|e| S::compare(&e.key, k) != Ordering::Greater));
            if entries.is_empty() {
                None
            } else {
                Some(Node::make_leaf(entries))
            }
        }
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            if S::compare(&e.key, k) == Ordering::Greater {
                up_to(l, k)
            } else {
                join_tree(l, e, up_to(r, k))
            }
        }
    }
}

/// Entries with keys `>= k`.
pub fn down_to<S: AugSpec, B: Balance>(t: Tree<S, B>, k: &S::K) -> Tree<S, B> {
    match t {
        None => None,
        Some(n) if n.is_leaf() => {
            let mut entries = take_leaf_entries(n);
            let cut = entries.partition_point(|e| S::compare(&e.key, k) == Ordering::Less);
            entries.drain(..cut);
            if entries.is_empty() {
                None
            } else {
                Some(Node::make_leaf(entries))
            }
        }
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            if S::compare(&e.key, k) == Ordering::Less {
                down_to(r, k)
            } else {
                join_tree(down_to(l, k), e, r)
            }
        }
    }
}

/// Entries with keys in the inclusive range `[lo, hi]` (the paper's
/// `range(m, k1, k2)`).
pub fn range<S: AugSpec, B: Balance>(t: Tree<S, B>, lo: &S::K, hi: &S::K) -> Tree<S, B> {
    match t {
        None => None,
        Some(n) => match &*n {
            Node::Leaf(_) => up_to(down_to(Some(n), lo), hi),
            Node::Internal(x) => {
                if S::compare(&x.key, lo) == Ordering::Less {
                    let (_l, _e, _m, r) = expose(n);
                    range(r, lo, hi)
                } else if S::compare(&x.key, hi) == Ordering::Greater {
                    let (l, _e, _m, _r) = expose(n);
                    range(l, lo, hi)
                } else {
                    // lo <= key <= hi: keep root, trim both sides.
                    let (l, e, _m, r) = expose(n);
                    join_tree(down_to(l, lo), e, up_to(r, hi))
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    fn m() -> M {
        M::build((0..100u64).map(|i| (i * 10, i)).collect())
    }

    #[test]
    fn up_to_down_to_inclusive() {
        let m = m();
        assert_eq!(m.up_to(&500).len(), 51); // keys 0..=500
        assert_eq!(m.up_to(&505).len(), 51);
        assert_eq!(m.up_to(&0).len(), 1);
        assert_eq!(m.down_to(&500).len(), 50); // keys 500..=990
        assert_eq!(m.down_to(&991).len(), 0);
        assert_eq!(m.down_to(&0).len(), 100);
    }

    #[test]
    fn range_boundaries_and_empty() {
        let m = m();
        assert_eq!(m.range(&0, &990).len(), 100);
        assert_eq!(m.range(&500, &500).len(), 1);
        assert_eq!(m.range(&501, &509).len(), 0);
        assert_eq!(m.range(&990, &0).len(), 0); // inverted
        assert_eq!(M::new().range(&1, &5).len(), 0);
    }

    #[test]
    fn extracted_ranges_are_valid_and_share() {
        // large enough that interior blocks dominate the O(log n + B)
        // rebuilt boundary region
        let m = M::build((0..5000u64).map(|i| (i * 10, i)).collect());
        let r = m.range(&2000, &45000);
        r.check_invariants().unwrap();
        // structure sharing: interior blocks and subtrees come from the
        // source; only the boundary region is rebuilt
        let (total, shared) = crate::stats::shared_with(r.root(), &[m.root()]);
        assert!(shared * 3 > total, "{shared}/{total}");
    }
}
