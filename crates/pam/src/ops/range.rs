//! Range extraction: `up_to`, `down_to`, `range` — O(log n) each, returning
//! persistent sub-maps that share structure with the input.

use crate::balance::{join_tree, Balance};
use crate::node::{expose, Tree};
use crate::spec::AugSpec;
use std::cmp::Ordering;

/// Entries with keys `<= k`.
pub fn up_to<S: AugSpec, B: Balance>(t: Tree<S, B>, k: &S::K) -> Tree<S, B> {
    match t {
        None => None,
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            if S::compare(&e.key, k) == Ordering::Greater {
                up_to(l, k)
            } else {
                join_tree(l, e, up_to(r, k))
            }
        }
    }
}

/// Entries with keys `>= k`.
pub fn down_to<S: AugSpec, B: Balance>(t: Tree<S, B>, k: &S::K) -> Tree<S, B> {
    match t {
        None => None,
        Some(n) => {
            let (l, e, _m, r) = expose(n);
            if S::compare(&e.key, k) == Ordering::Less {
                down_to(r, k)
            } else {
                join_tree(down_to(l, k), e, r)
            }
        }
    }
}

/// Entries with keys in the inclusive range `[lo, hi]` (the paper's
/// `range(m, k1, k2)`).
pub fn range<S: AugSpec, B: Balance>(t: Tree<S, B>, lo: &S::K, hi: &S::K) -> Tree<S, B> {
    match t {
        None => None,
        Some(n) => {
            if S::compare(&n.key, lo) == Ordering::Less {
                let (_l, _e, _m, r) = expose(n);
                range(r, lo, hi)
            } else if S::compare(&n.key, hi) == Ordering::Greater {
                let (l, _e, _m, _r) = expose(n);
                range(l, lo, hi)
            } else {
                // lo <= key <= hi: keep root, trim both sides.
                let (l, e, _m, r) = expose(n);
                join_tree(down_to(l, lo), e, up_to(r, hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    fn m() -> M {
        M::build((0..100u64).map(|i| (i * 10, i)).collect())
    }

    #[test]
    fn up_to_down_to_inclusive() {
        let m = m();
        assert_eq!(m.up_to(&500).len(), 51); // keys 0..=500
        assert_eq!(m.up_to(&505).len(), 51);
        assert_eq!(m.up_to(&0).len(), 1);
        assert_eq!(m.down_to(&500).len(), 50); // keys 500..=990
        assert_eq!(m.down_to(&991).len(), 0);
        assert_eq!(m.down_to(&0).len(), 100);
    }

    #[test]
    fn range_boundaries_and_empty() {
        let m = m();
        assert_eq!(m.range(&0, &990).len(), 100);
        assert_eq!(m.range(&500, &500).len(), 1);
        assert_eq!(m.range(&501, &509).len(), 0);
        assert_eq!(m.range(&990, &0).len(), 0); // inverted
        assert_eq!(M::new().range(&1, &5).len(), 0);
    }

    #[test]
    fn extracted_ranges_are_valid_and_share() {
        let m = m();
        let r = m.range(&200, &700);
        r.check_invariants().unwrap();
        // structure sharing: most of the nodes come from the source
        let (total, shared) = crate::stats::shared_with(r.root(), &[m.root()]);
        assert!(shared * 2 > total, "{shared}/{total}");
    }
}
