//! Best-first top-k selection guided by the augmented values.
//!
//! When the combine function is a *maximum* over some ordered score (or
//! any `f` with `f(a,b) ∈ {a,b}` and `f(a,b) >= a, b`), every node's
//! augmented value upper-bounds the scores below it. A best-first search
//! over subtree bounds then yields the k highest-scoring entries in
//! O((k + log n) log k) heap operations — independent of the map size
//! for small `k`.
//!
//! This is the generic engine behind the inverted index's "top 10
//! documents by weight" query (§5.3): the paper stores the max weight as
//! the augmentation precisely to make this search possible. Expanding a
//! leaf block scores its (at most `LEAF_CAP`) entries individually.

use crate::balance::Balance;
use crate::node::{Node, Tree};
use crate::spec::AugSpec;
use std::collections::BinaryHeap;

enum Item<'a, S: AugSpec, B: Balance> {
    Sub(&'a Node<S, B>),
    Entry(&'a S::K, &'a S::V),
}

struct Ranked<'a, S: AugSpec, B: Balance, W: Ord> {
    score: W,
    item: Item<'a, S, B>,
}

impl<S: AugSpec, B: Balance, W: Ord> PartialEq for Ranked<'_, S, B, W> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl<S: AugSpec, B: Balance, W: Ord> Eq for Ranked<'_, S, B, W> {}
impl<S: AugSpec, B: Balance, W: Ord> PartialOrd for Ranked<'_, S, B, W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S: AugSpec, B: Balance, W: Ord> Ord for Ranked<'_, S, B, W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score.cmp(&other.score)
    }
}

/// The `k` entries with the highest scores, best first.
///
/// `bound(aug)` must upper-bound `score(k, v)` over every entry of the
/// subtree whose augmented value is `aug` — which holds by construction
/// when the augmentation is the max of the scores (e.g. [`crate::MaxAug`]
/// with `bound = identity`, `score = value`).
pub fn top_k_by<'a, S, B, W>(
    t: &'a Tree<S, B>,
    k: usize,
    bound: impl Fn(&S::A) -> W,
    score: impl Fn(&S::K, &S::V) -> W,
) -> Vec<(&'a S::K, &'a S::V)>
where
    S: AugSpec,
    B: Balance,
    W: Ord,
{
    let mut out = Vec::with_capacity(k.min(crate::node::size(t)));
    let mut heap: BinaryHeap<Ranked<'a, S, B, W>> = BinaryHeap::new();
    if let Some(root) = t.as_deref() {
        heap.push(Ranked {
            score: bound(root.aug()),
            item: Item::Sub(root),
        });
    }
    while out.len() < k {
        match heap.pop() {
            None => break,
            Some(Ranked {
                item: Item::Entry(key, val),
                ..
            }) => out.push((key, val)),
            Some(Ranked {
                item: Item::Sub(n), ..
            }) => match n {
                Node::Leaf(l) => {
                    for e in l.entries() {
                        heap.push(Ranked {
                            score: score(&e.key, &e.val),
                            item: Item::Entry(&e.key, &e.val),
                        });
                    }
                }
                Node::Internal(x) => {
                    heap.push(Ranked {
                        score: score(&x.key, &x.val),
                        item: Item::Entry(&x.key, &x.val),
                    });
                    if let Some(l) = x.left.as_deref() {
                        heap.push(Ranked {
                            score: bound(l.aug()),
                            item: Item::Sub(l),
                        });
                    }
                    if let Some(r) = x.right.as_deref() {
                        heap.push(Ranked {
                            score: bound(r.aug()),
                            item: Item::Sub(r),
                        });
                    }
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MaxAug;
    use crate::AugMap;

    #[test]
    fn top_k_matches_sorting() {
        let pairs: Vec<(u64, u64)> = (0..5000u64)
            .map(|i| (i, (i.wrapping_mul(0x9e3779b97f4a7c15)) >> 40))
            .collect();
        let m: AugMap<MaxAug<u64, u64>> = AugMap::build(pairs.clone());
        let got = top_k_by(m.root(), 50, |&a| a, |_, &v| v);
        let mut sorted = pairs.clone();
        sorted.sort_by_key(|&(_, v)| std::cmp::Reverse(v));
        let got_scores: Vec<u64> = got.iter().map(|&(_, &v)| v).collect();
        let want_scores: Vec<u64> = sorted[..50].iter().map(|&(_, v)| v).collect();
        assert_eq!(got_scores, want_scores);
    }

    #[test]
    fn k_larger_than_map() {
        let m: AugMap<MaxAug<u64, u64>> = AugMap::build(vec![(1, 10), (2, 30), (3, 20)]);
        let got = top_k_by(m.root(), 10, |&a| a, |_, &v| v);
        let scores: Vec<u64> = got.iter().map(|&(_, &v)| v).collect();
        assert_eq!(scores, vec![30, 20, 10]);
    }

    #[test]
    fn empty_map() {
        let m: AugMap<MaxAug<u64, u64>> = AugMap::new();
        assert!(top_k_by(m.root(), 5, |&a| a, |_, &v| v).is_empty());
    }
}
