//! Parallel `filter` (Figure 2 of the paper): linear work, O(log² n) span.
//! Leaf blocks are filtered with one linear pass.

use crate::balance::{from_sorted_entries, join_tree, Balance};
use crate::node::{expose, take_leaf_entries, Tree};
use crate::ops::split::join2;
use crate::spec::AugSpec;
use parlay::{granularity, par2_if};

/// Keep the entries satisfying `pred`. Both subtrees are filtered in
/// parallel and rejoined with `join` (root kept) or `join2` (root dropped).
pub fn filter<S, B, P>(t: Tree<S, B>, pred: &P) -> Tree<S, B>
where
    S: AugSpec,
    B: Balance,
    P: Fn(&S::K, &S::V) -> bool + Sync,
{
    match t {
        None => None,
        Some(n) if n.is_leaf() => {
            let mut entries = take_leaf_entries(n);
            entries.retain(|e| pred(&e.key, &e.val));
            from_sorted_entries::<S, B>(entries)
        }
        Some(n) => {
            let work = n.size_of();
            let (l, e, _m, r) = expose(n);
            let keep = pred(&e.key, &e.val);
            let (l2, r2) = par2_if(
                work > granularity(),
                move || filter(l, pred),
                move || filter(r, pred),
            );
            if keep {
                join_tree(l2, e, r2)
            } else {
                join2(l2, r2)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::SumAug;
    use crate::AugMap;

    type M = AugMap<SumAug<u64, u64>>;

    #[test]
    fn filter_everything_and_nothing() {
        let m = M::build((0..500u64).map(|i| (i, i)).collect());
        assert_eq!(m.clone().filter(|_, _| true).len(), 500);
        assert!(m.clone().filter(|_, _| false).is_empty());
        assert!(M::new().filter(|_, _| true).is_empty());
    }

    #[test]
    fn filter_maintains_aug_and_invariants() {
        let m = M::build((0..2000u64).map(|i| (i, i)).collect());
        let f = m.filter(|&k, _| k % 7 == 0);
        f.check_invariants().unwrap();
        let want: u64 = (0..2000u64).filter(|k| k % 7 == 0).sum();
        assert_eq!(f.aug_val(), want);
    }
}
