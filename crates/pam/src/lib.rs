//! # PAM: Parallel Augmented Maps (in Rust)
//!
//! A faithful reproduction of the library from **"PAM: Parallel Augmented
//! Maps"** (Sun, Ferizovic, Blelloch; PPoPP 2018): parallel, persistent,
//! ordered key-value maps *augmented* with a monoid "sum" over their
//! entries, supporting range sums, filtered extraction, projections and
//! work-optimal bulk set operations.
//!
//! ## The model
//!
//! An augmented map type is parameterized by `(K, <, V, A, g, f, I)`: keys
//! with a total order, values, an augmented-value type, a base function
//! `g : K × V → A`, and an associative combine `f : A × A → A` with
//! identity `I`. The augmented value of a map is
//! `f(g(k1,v1), ..., g(kn,vn))`. In this crate the tuple is an
//! [`AugSpec`] implementation; ready-made specs cover the common cases
//! ([`SumAug`], [`MaxAug`], [`MinAug`], and un-augmented [`NoAug`]).
//!
//! ## The data structure
//!
//! Balanced binary trees where every node caches the augmented value of
//! its subtree, so `aug_range`/`aug_left` run in O(log n) and `aug_val` in
//! O(1). All algorithms are built on a single balance-aware `join`
//! (Blelloch, Ferizovic, Sun; SPAA 2016), so the same code runs on
//! [`WeightBalanced`] (default), [`Avl`], [`RedBlack`] and [`Treap`]
//! trees. Bulk operations (`union`, `intersect`, `difference`, `filter`,
//! `build`, `multi_insert`, `map_reduce`, ...) fork their recursive calls
//! with rayon and are work-optimal.
//!
//! Maps are **functional/persistent**: updates path-copy, snapshots are
//! O(1) clones, and unique nodes are reused in place (the refcount-1
//! optimization — disable with the `no-reuse` feature to measure it).
//!
//! ## Quick example (the paper's Equation 1: integer map with sums)
//!
//! ```
//! use pam::{AugMap, SumAug};
//!
//! let mut m: AugMap<SumAug<u64, u64>> = AugMap::build(
//!     (0..1000).map(|i| (i, i)).collect());
//!
//! assert_eq!(m.aug_val(), 499_500);          // O(1) total
//! assert_eq!(m.aug_range(&10, &19), 145);    // O(log n) range sum
//! m.insert(2000, 7);
//! let snapshot = m.clone();                   // O(1), fully persistent
//! m.remove(&2000);
//! assert_eq!(snapshot.aug_val(), 499_507);   // snapshot unaffected
//! ```

#![warn(missing_docs)]

pub mod balance;
pub mod concurrent;
pub mod cursor;
mod iter;
mod map;
pub mod node;
pub mod ops;
pub mod spec;
pub mod stats;
pub mod validate;

pub use balance::{Avl, Balance, RbMeta, RedBlack, Treap, WeightBalanced, WeightBalancedCap};
pub use concurrent::SharedMap;
pub use cursor::Cursor;
pub use iter::{Iter, RangeIter};
pub use map::AugMap;
pub use node::{par_drop, EntryOwned, Node, Tree, DEFAULT_LEAF_B};
pub use spec::{Addable, AugSpec, MaxAug, Maxable, MinAug, Minable, NoAug, SumAug};

/// A plain (un-augmented) ordered map.
pub type OrdMap<K, V, B = WeightBalanced> = AugMap<NoAug<K, V>, B>;

/// Everything most users need.
pub mod prelude {
    pub use crate::{
        Addable, AugMap, AugSpec, Avl, Balance, MaxAug, Maxable, MinAug, Minable, NoAug, OrdMap,
        RedBlack, SharedMap, SumAug, Treap, WeightBalanced,
    };
}
