//! Red-black trees.
//!
//! Join-based red-black trees following the SPAA'16 "Just Join" treatment:
//! each node stores its color and black height. `join` blackens both
//! roots, descends the spine of the side with larger black height until
//! the black heights meet at a black node, attaches a red node there, and
//! repairs red-red violations on the way back up with the classic
//! functional (Okasaki-style) balance patterns. The final root is
//! blackened.
//!
//! A blocked leaf counts as a *black* node of black height 1, so red-red
//! repairs never look inside a block: every red node is internal, and the
//! descent stops at (never enters) leaves — with both join sides nonempty,
//! a leaf reached on the spine always satisfies the attach condition.

use super::Balance;
use crate::node::{expose, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::Arc;

/// Red-black scheme metadata: color and black height.
///
/// `bh` counts the black nodes on any path from this node down to an empty
/// tree, including this node if it is black (empty trees have `bh = 0`;
/// blocked leaves are black with `bh = 1`).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RbMeta {
    /// Is this node red?
    pub red: bool,
    /// Black height of the subtree rooted here.
    pub bh: u32,
}

/// Red-black balancing scheme.
pub struct RedBlack;

type T<S> = Tree<S, RedBlack>;
type N<S> = Arc<Node<S, RedBlack>>;
type E<S> = EntryOwned<S, RedBlack>;

/// Metadata a node *implies*: stored for internal nodes, black/bh-1 for
/// leaf blocks.
#[inline]
fn meta_of<S: AugSpec>(n: &Node<S, RedBlack>) -> RbMeta {
    match n {
        Node::Leaf(_) => RbMeta { red: false, bh: 1 },
        Node::Internal(x) => x.meta,
    }
}

#[inline]
fn bh<S: AugSpec>(t: &T<S>) -> u32 {
    t.as_deref().map_or(0, |n| meta_of(n).bh)
}

#[inline]
fn is_red<S: AugSpec>(t: &T<S>) -> bool {
    t.as_deref().is_some_and(|n| meta_of(n).red)
}

/// Make a node with an explicit color; `bh` is derived from the left child
/// (both children must agree for a valid tree — checked by `local_ok`).
#[inline]
fn mk<S: AugSpec>(l: T<S>, e: E<S>, red: bool, r: T<S>) -> N<S> {
    let below = bh::<S>(&l);
    debug_assert_eq!(below, bh::<S>(&r), "children black heights must agree");
    let meta = RbMeta {
        red,
        bh: below + u32::from(!red),
    };
    Node::make(l, e, meta, r)
}

/// Recolor the root of `t` black (no-op when already black or empty —
/// leaf blocks are always black).
fn blacken<S: AugSpec>(t: T<S>) -> T<S> {
    match t {
        Some(n) if meta_of(&n).red => {
            let (l, e, _m, r) = expose(n);
            Some(mk(l, e, false, r))
        }
        other => other,
    }
}

/// The children of a node known to be red (red nodes are never leaves).
#[inline]
fn red_children<S: AugSpec>(n: &Node<S, RedBlack>) -> (&T<S>, &T<S>) {
    match n {
        Node::Internal(x) => (&x.left, &x.right),
        Node::Leaf(_) => unreachable!("leaf blocks are black"),
    }
}

/// Construct node `(l, e, r)` with color `red`, then repair the Okasaki
/// right-side patterns if this node is black and its right child starts a
/// red-red chain.
fn balance_right<S: AugSpec>(l: T<S>, e: E<S>, red: bool, r: T<S>) -> N<S> {
    if !red && is_red::<S>(&r) {
        let rn = r.as_deref().expect("red implies nonempty");
        let (rn_left, rn_right) = red_children(rn);
        if is_red::<S>(rn_right) {
            // B(l, e, R(b, y, R..)) -> R(B(l, e, b), y, B(..))
            let (b, y, _m, rr) = expose(r.expect("checked above"));
            let rr_black = blacken::<S>(rr);
            return mk(Some(mk(l, e, false, b)), y, true, rr_black);
        }
        if is_red::<S>(rn_left) {
            // B(l, e, R(R(b2, y, c2), z, d)) -> R(B(l, e, b2), y, B(c2, z, d))
            let (rl, z, _m, d) = expose(r.expect("checked above"));
            let (b2, y, _m2, c2) = expose(rl.expect("red implies nonempty"));
            return mk(
                Some(mk(l, e, false, b2)),
                y,
                true,
                Some(mk(c2, z, false, d)),
            );
        }
    }
    mk(l, e, red, r)
}

/// Mirror of [`balance_right`] for left-side red-red chains.
fn balance_left<S: AugSpec>(l: T<S>, e: E<S>, red: bool, r: T<S>) -> N<S> {
    if !red && is_red::<S>(&l) {
        let ln = l.as_deref().expect("red implies nonempty");
        let (ln_left, ln_right) = red_children(ln);
        if is_red::<S>(ln_left) {
            // B(R(R.., y, c), z, d) -> R(B(..), y, B(c, z, d))
            let (ll, y, _m, c) = expose(l.expect("checked above"));
            let ll_black = blacken::<S>(ll);
            return mk(ll_black, y, true, Some(mk(c, e, false, r)));
        }
        if is_red::<S>(ln_right) {
            // B(R(a, x, R(b2, y, c2)), z, d) -> R(B(a, x, b2), y, B(c2, z, d))
            let (a, x, _m, lr) = expose(l.expect("checked above"));
            let (b2, y, _m2, c2) = expose(lr.expect("red implies nonempty"));
            return mk(
                Some(mk(a, x, false, b2)),
                y,
                true,
                Some(mk(c2, e, false, r)),
            );
        }
    }
    mk(l, e, red, r)
}

/// Precondition: `bh(l) >= bh(r)` and the root of `r` is black.
/// Returns a tree with black height `bh(l)` whose root may be red
/// (possibly with one red child — resolved by the caller's blacken).
fn join_right<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    if bh::<S>(&l) == bh::<S>(&r) && !is_red::<S>(&l) {
        // attach as a red node: black height unchanged
        return mk(l, e, true, r);
    }
    let (ll, le, m, lr) = expose(l.expect("bh(l) > 0 or red root implies nonempty"));
    let t = join_right::<S>(lr, e, r);
    balance_right(ll, le, m.red, Some(t))
}

/// Mirror of [`join_right`]; precondition `bh(r) >= bh(l)`, root of `l` black.
fn join_left<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    if bh::<S>(&r) == bh::<S>(&l) && !is_red::<S>(&r) {
        return mk(l, e, true, r);
    }
    let (rl, re, m, rr) = expose(r.expect("bh(r) > 0 or red root implies nonempty"));
    let t = join_left::<S>(l, e, rl);
    balance_left(Some(t), re, m.red, rr)
}

impl Balance for RedBlack {
    type Meta = RbMeta;
    type EntryMeta = ();
    const NAME: &'static str = "red-black";

    #[inline]
    fn leaf_meta() -> RbMeta {
        RbMeta { red: false, bh: 1 }
    }

    #[inline]
    fn fresh_entry_meta() {}

    fn join<S: AugSpec>(l: Tree<S, Self>, e: EntryOwned<S, Self>, r: Tree<S, Self>) -> N<S> {
        // Blackening the roots costs O(1) and establishes the recursion's
        // preconditions (at most +1 on either black height).
        let l = blacken::<S>(l);
        let r = blacken::<S>(r);
        let bl = bh::<S>(&l);
        let br = bh::<S>(&r);
        let joined = if bl > br {
            join_right::<S>(l, e, r)
        } else if br > bl {
            join_left::<S>(l, e, r)
        } else {
            // equal black heights with black roots: a black parent is
            // always valid
            return mk(l, e, false, r);
        };
        // The unwound spine may leave a red root (possibly with a red
        // child); blackening it restores all invariants.
        blacken::<S>(Some(joined)).expect("nonempty")
    }

    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool {
        let x = match n {
            Node::Leaf(_) => return true,
            Node::Internal(x) => x,
        };
        let bl = bh::<S>(&x.left);
        let br = bh::<S>(&x.right);
        if bl != br {
            return false;
        }
        if x.meta.bh != bl + u32::from(!x.meta.red) {
            return false;
        }
        if x.meta.red && (is_red::<S>(&x.left) || is_red::<S>(&x.right)) {
            return false;
        }
        true
    }
}
