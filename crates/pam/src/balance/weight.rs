//! Weight-balanced (BB[α]) trees — PAM's default scheme.
//!
//! A node is balanced when each subtree holds between `α` and `1 − α` of
//! the node's weight (weight = size + 1). PAM uses `α = 0.29`, inside the
//! provably safe range for join-based rebalancing (α ≤ 1 − 1/√2 ≈ 0.2929).
//! We evaluate the ratio tests in exact integer arithmetic
//! (`α = 29/100`), so no floating point enters the balance decisions.
//!
//! `join` follows Figure 7 of the SPAA'16 "Just Join" paper: walk down the
//! spine of the heavier side until the two pieces are "like" (mutually
//! balanced), attach there, and repair on the way back up with single or
//! double rotations.

use super::Balance;
use crate::node::{expose, size, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::Arc;

/// PAM's default balancing scheme (α = 0.29 weight-balanced tree).
pub struct WeightBalanced;

const ALPHA_NUM: u64 = 29;
const ALPHA_DEN: u64 = 100;

type T<S> = Tree<S, WeightBalanced>;
type N<S> = Arc<Node<S, WeightBalanced>>;
type E<S> = EntryOwned<S, WeightBalanced>;

#[inline]
fn weight<S: AugSpec>(t: &T<S>) -> u64 {
    size(t) as u64 + 1
}

/// Is a subtree of weight `wa` too heavy next to a sibling of weight `wb`?
/// (its share of the total exceeds `1 − α`)
#[inline]
fn heavy(wa: u64, wb: u64) -> bool {
    wa * ALPHA_DEN > (ALPHA_DEN - ALPHA_NUM) * (wa + wb)
}

/// May subtrees of weights `wa` and `wb` be siblings? (neither is heavy)
#[inline]
fn like(wa: u64, wb: u64) -> bool {
    !heavy(wa, wb) && !heavy(wb, wa)
}

#[inline]
fn mk<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    Node::make(l, e, (), r)
}

/// `tl` is heavy with respect to `tr`: descend `tl`'s right spine until the
/// remainder is "like" `tr`, then repair with rotations on the way up.
fn join_right<S: AugSpec>(tl: T<S>, e: E<S>, tr: T<S>) -> N<S> {
    if like(weight::<S>(&tl), weight::<S>(&tr)) {
        return mk(tl, e, tr);
    }
    let (l, le, _m, c) = expose(tl.expect("heavy side cannot be empty"));
    let wl = weight::<S>(&l);
    let tp = join_right::<S>(c, e, tr); // T' in the paper's pseudocode
    let wtp = tp.size as u64 + 1;
    if like(wl, wtp) {
        return mk(l, le, Some(tp));
    }
    let wl1 = weight::<S>(&tp.left);
    let wr1 = weight::<S>(&tp.right);
    if like(wl, wl1) && like(wl + wl1, wr1) {
        // single rotation: rotateLeft(Node(l, le, T'))
        let (l1, e1, _m1, r1) = expose(tp);
        mk(Some(mk(l, le, l1)), e1, r1)
    } else {
        // double rotation: rotateLeft(Node(l, le, rotateRight(T')))
        let (l1, e1, _m1, r1) = expose(tp);
        let (l2, e2, _m2, r2) = expose(l1.expect("double rotation requires inner child"));
        let nl = mk(l, le, l2);
        let nr = mk(r2, e1, r1);
        mk(Some(nl), e2, Some(nr))
    }
}

/// Mirror of [`join_right`]: `tr` is heavy, descend its left spine.
fn join_left<S: AugSpec>(tl: T<S>, e: E<S>, tr: T<S>) -> N<S> {
    if like(weight::<S>(&tl), weight::<S>(&tr)) {
        return mk(tl, e, tr);
    }
    let (c, re, _m, r) = expose(tr.expect("heavy side cannot be empty"));
    let wr = weight::<S>(&r);
    let tp = join_left::<S>(tl, e, c);
    let wtp = tp.size as u64 + 1;
    if like(wtp, wr) {
        return mk(Some(tp), re, r);
    }
    let wl1 = weight::<S>(&tp.left);
    let wr1 = weight::<S>(&tp.right);
    if like(wr1, wr) && like(wr1 + wr, wl1) {
        // single rotation: rotateRight(Node(T', re, r))
        let (l1, e1, _m1, r1) = expose(tp);
        mk(l1, e1, Some(mk(r1, re, r)))
    } else {
        // double rotation: rotateRight(Node(rotateLeft(T'), re, r))
        let (l1, e1, _m1, r1) = expose(tp);
        let (l2, e2, _m2, r2) = expose(r1.expect("double rotation requires inner child"));
        let nl = mk(l1, e1, l2);
        let nr = mk(r2, re, r);
        mk(Some(nl), e2, Some(nr))
    }
}

impl Balance for WeightBalanced {
    type Meta = ();
    type EntryMeta = ();
    const NAME: &'static str = "weight-balanced";

    #[inline]
    fn fresh_entry_meta() {}

    fn join<S: AugSpec>(l: Tree<S, Self>, e: EntryOwned<S, Self>, r: Tree<S, Self>) -> N<S> {
        let wl = weight::<S>(&l);
        let wr = weight::<S>(&r);
        if heavy(wl, wr) {
            join_right::<S>(l, e, r)
        } else if heavy(wr, wl) {
            join_left::<S>(l, e, r)
        } else {
            mk(l, e, r)
        }
    }

    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool {
        like(weight::<S>(&n.left), weight::<S>(&n.right))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_predicates() {
        // equal weights are always like
        assert!(like(1, 1));
        assert!(like(10, 10));
        // 3-vs-1: 75% share > 71% -> heavy
        assert!(heavy(3, 1));
        assert!(!like(3, 1));
        // 2-vs-1: 66.7% share <= 71% -> fine
        assert!(like(2, 1));
        // extreme skew
        assert!(heavy(1000, 1));
        assert!(!heavy(1, 1000));
    }
}
