//! Weight-balanced (BB[α]) trees — PAM's default scheme.
//!
//! A node is balanced when each subtree holds between `α` and `1 − α` of
//! the node's weight (weight = size + 1). PAM uses `α = 0.29`, inside the
//! provably safe range for join-based rebalancing (α ≤ 1 − 1/√2 ≈ 0.2929).
//! We evaluate the ratio tests in exact integer arithmetic
//! (`α = 29/100`), so no floating point enters the balance decisions.
//!
//! `join` follows Figure 7 of the SPAA'16 "Just Join" paper: walk down the
//! spine of the heavier side until the two pieces are "like" (mutually
//! balanced), attach there, and repair on the way back up with single or
//! double rotations.
//!
//! With blocked leaves, weights count *entries*, so a leaf block of `k`
//! entries weighs `k + 1` — balance reasoning is oblivious to blocking.
//! The descent never exposes a block (a heavy side always outweighs
//! `LEAF_CAP + 1`, hence is internal); the one place a rotation could
//! reach inside a block — the double rotation's inner child — falls back
//! to [`super::repack_region`], whose region is O(LEAF_CAP) there.
//!
//! The capacity is a const generic: [`WeightBalanced`] is the crate
//! default ([`crate::node::DEFAULT_LEAF_B`]), while the differential
//! oracle suite instantiates `WeightBalancedCap<1>` / `<2>` / `<32>`
//! side by side in one binary.

use super::{repack_region, Balance};
use crate::node::{expose, size, EntryOwned, Node, Tree, DEFAULT_LEAF_B};
use crate::spec::AugSpec;
use std::sync::Arc;

/// Weight-balanced scheme with an explicit leaf-block capacity
/// (1 restores the paper's one-entry-per-node tree).
pub struct WeightBalancedCap<const CAP: usize>;

/// PAM's default balancing scheme (α = 0.29 weight-balanced tree) with
/// the crate-default leaf block capacity.
pub type WeightBalanced = WeightBalancedCap<DEFAULT_LEAF_B>;

const ALPHA_NUM: u64 = 29;
const ALPHA_DEN: u64 = 100;

type T<S, const CAP: usize> = Tree<S, WeightBalancedCap<CAP>>;
type N<S, const CAP: usize> = Arc<Node<S, WeightBalancedCap<CAP>>>;
type E<S, const CAP: usize> = EntryOwned<S, WeightBalancedCap<CAP>>;

#[inline]
fn weight<S: AugSpec, const CAP: usize>(t: &T<S, CAP>) -> u64 {
    size(t) as u64 + 1
}

/// Is a subtree of weight `wa` too heavy next to a sibling of weight `wb`?
/// (its share of the total exceeds `1 − α`)
#[inline]
fn heavy(wa: u64, wb: u64) -> bool {
    wa * ALPHA_DEN > (ALPHA_DEN - ALPHA_NUM) * (wa + wb)
}

/// May subtrees of weights `wa` and `wb` be siblings? (neither is heavy)
#[inline]
fn like(wa: u64, wb: u64) -> bool {
    !heavy(wa, wb) && !heavy(wb, wa)
}

#[inline]
fn mk<S: AugSpec, const CAP: usize>(l: T<S, CAP>, e: E<S, CAP>, r: T<S, CAP>) -> N<S, CAP> {
    Node::make(l, e, (), r)
}

/// `tl` is heavy with respect to `tr`: descend `tl`'s right spine until the
/// remainder is "like" `tr`, then repair with rotations on the way up.
fn join_right<S: AugSpec, const CAP: usize>(
    tl: T<S, CAP>,
    e: E<S, CAP>,
    tr: T<S, CAP>,
) -> N<S, CAP> {
    if like(weight(&tl), weight(&tr)) {
        return mk(tl, e, tr);
    }
    let (l, le, _m, c) = expose(tl.expect("heavy side cannot be empty"));
    let wl = weight(&l);
    let tp = join_right(c, e, tr); // T' in the paper's pseudocode
    let wtp = tp.size_of() as u64 + 1;
    if like(wl, wtp) {
        return mk(l, le, Some(tp));
    }
    let (l1, e1, _m1, r1) = expose(tp);
    let wl1 = weight(&l1);
    let wr1 = weight(&r1);
    if like(wl, wl1) && like(wl + wl1, wr1) {
        // single rotation: rotateLeft(Node(l, le, T'))
        mk(Some(mk(l, le, l1)), e1, r1)
    } else if l1.as_deref().is_some_and(|n| n.is_leaf()) {
        // double rotation would split the inner leaf block; the whole
        // region is O(LEAF_CAP) here, so re-pack it instead.
        let rest = mk(l1, e1, r1);
        repack_region(l, le, Some(rest))
    } else {
        // double rotation: rotateLeft(Node(l, le, rotateRight(T')))
        let (l2, e2, _m2, r2) = expose(l1.expect("double rotation requires inner child"));
        let nl = mk(l, le, l2);
        let nr = mk(r2, e1, r1);
        mk(Some(nl), e2, Some(nr))
    }
}

/// Mirror of [`join_right`]: `tr` is heavy, descend its left spine.
fn join_left<S: AugSpec, const CAP: usize>(
    tl: T<S, CAP>,
    e: E<S, CAP>,
    tr: T<S, CAP>,
) -> N<S, CAP> {
    if like(weight(&tl), weight(&tr)) {
        return mk(tl, e, tr);
    }
    let (c, re, _m, r) = expose(tr.expect("heavy side cannot be empty"));
    let wr = weight(&r);
    let tp = join_left(tl, e, c);
    let wtp = tp.size_of() as u64 + 1;
    if like(wtp, wr) {
        return mk(Some(tp), re, r);
    }
    let (l1, e1, _m1, r1) = expose(tp);
    let wl1 = weight(&l1);
    let wr1 = weight(&r1);
    if like(wr1, wr) && like(wr1 + wr, wl1) {
        // single rotation: rotateRight(Node(T', re, r))
        mk(l1, e1, Some(mk(r1, re, r)))
    } else if r1.as_deref().is_some_and(|n| n.is_leaf()) {
        let rest = mk(l1, e1, r1);
        repack_region(Some(rest), re, r)
    } else {
        // double rotation: rotateRight(Node(rotateLeft(T'), re, r))
        let (l2, e2, _m2, r2) = expose(r1.expect("double rotation requires inner child"));
        let nl = mk(l1, e1, l2);
        let nr = mk(r2, re, r);
        mk(Some(nl), e2, Some(nr))
    }
}

impl<const CAP: usize> Balance for WeightBalancedCap<CAP> {
    type Meta = ();
    type EntryMeta = ();
    const NAME: &'static str = "weight-balanced";
    const LEAF_CAP: usize = CAP;

    #[inline]
    fn leaf_meta() {}

    #[inline]
    fn fresh_entry_meta() {}

    fn join<S: AugSpec>(l: Tree<S, Self>, e: EntryOwned<S, Self>, r: Tree<S, Self>) -> N<S, CAP> {
        let wl = weight(&l);
        let wr = weight(&r);
        if heavy(wl, wr) {
            join_right(l, e, r)
        } else if heavy(wr, wl) {
            join_left(l, e, r)
        } else {
            mk(l, e, r)
        }
    }

    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool {
        match n {
            Node::Leaf(_) => true,
            Node::Internal(x) => like(weight(&x.left), weight(&x.right)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_predicates() {
        // equal weights are always like
        assert!(like(1, 1));
        assert!(like(10, 10));
        // 3-vs-1: 75% share > 71% -> heavy
        assert!(heavy(3, 1));
        assert!(!like(3, 1));
        // 2-vs-1: 66.7% share <= 71% -> fine
        assert!(like(2, 1));
        // extreme skew
        assert!(heavy(1000, 1));
        assert!(!heavy(1, 1000));
    }
}
