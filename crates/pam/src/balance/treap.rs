//! Treaps (randomized heap-ordered search trees).
//!
//! Each *entry* carries a random priority drawn once at creation (this is
//! exactly what [`Balance::EntryMeta`] exists for — priorities survive
//! splits, joins and rebuilds). `join` interleaves the two spines in
//! max-heap priority order, which takes expected O(log n) time.

use super::Balance;
use crate::node::{expose, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Randomized treap scheme.
pub struct Treap;

type T<S> = Tree<S, Treap>;
type N<S> = Arc<Node<S, Treap>>;
type E<S> = EntryOwned<S, Treap>;

/// Deterministically-seeded counter hashed through SplitMix64: unique,
/// well-distributed priorities without any per-thread RNG state.
static PRIO_SEED: AtomicU64 = AtomicU64::new(0);

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn prio<S: AugSpec>(t: &T<S>) -> u64 {
    // empty trees have the lowest possible priority
    t.as_ref().map_or(0, |n| n.em)
}

#[inline]
fn mk<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    Node::make(l, e, (), r)
}

fn join_rec<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    let pl = prio::<S>(&l);
    let pr = prio::<S>(&r);
    if e.em >= pl && e.em >= pr {
        mk(l, e, r)
    } else if pl >= pr {
        // the left root keeps the top of the heap
        let (ll, le, _m, lr) = expose(l.expect("nonempty by priority"));
        mk(ll, le, Some(join_rec::<S>(lr, e, r)))
    } else {
        let (rl, re, _m, rr) = expose(r.expect("nonempty by priority"));
        mk(Some(join_rec::<S>(l, e, rl)), re, rr)
    }
}

impl Balance for Treap {
    type Meta = ();
    type EntryMeta = u64; // priority (max-heap)
    const NAME: &'static str = "treap";

    #[inline]
    fn fresh_entry_meta() -> u64 {
        // never return 0 so real entries always outrank the empty tree
        // relaxed: only uniqueness of the seed matters, not order —
        // any interleaving of fetch_adds yields distinct priorities
        splitmix64(PRIO_SEED.fetch_add(1, Ordering::Relaxed)) | 1
    }

    fn join<S: AugSpec>(l: Tree<S, Self>, e: EntryOwned<S, Self>, r: Tree<S, Self>) -> N<S> {
        join_rec::<S>(l, e, r)
    }

    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool {
        let ok_l = n.left.as_ref().is_none_or(|l| n.em >= l.em);
        let ok_r = n.right.as_ref().is_none_or(|r| n.em >= r.em);
        ok_l && ok_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let p = <Treap as Balance>::fresh_entry_meta();
            assert_ne!(p, 0);
            assert!(seen.insert(p), "duplicate priority");
        }
    }
}
