//! Treaps (randomized heap-ordered search trees).
//!
//! Each *entry* carries a random priority drawn once at creation (this is
//! exactly what [`Balance::EntryMeta`] exists for — priorities survive
//! splits, joins and rebuilds). `join` interleaves the two spines in
//! max-heap priority order, which takes expected O(log n) time.
//!
//! Treaps pin [`Balance::LEAF_CAP`] to 1: the heap order is a property of
//! individual entries, so a multi-entry block has no single meaningful
//! priority. Leaves are therefore singletons whose priority is their one
//! entry's `em`, and the blocked-join machinery degenerates to the plain
//! scheme join.

use super::Balance;
use crate::node::{expose, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Randomized treap scheme.
pub struct Treap;

type T<S> = Tree<S, Treap>;
type N<S> = Arc<Node<S, Treap>>;
type E<S> = EntryOwned<S, Treap>;

/// Deterministically-seeded counter hashed through SplitMix64: unique,
/// well-distributed priorities without any per-thread RNG state.
static PRIO_SEED: AtomicU64 = AtomicU64::new(0);

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn node_prio<S: AugSpec>(n: &Node<S, Treap>) -> u64 {
    match n {
        // LEAF_CAP == 1, so a leaf holds exactly one entry.
        Node::Leaf(l) => l.entries[0].em,
        Node::Internal(x) => x.em,
    }
}

#[inline]
fn prio<S: AugSpec>(t: &T<S>) -> u64 {
    // empty trees have the lowest possible priority
    t.as_deref().map_or(0, node_prio)
}

#[inline]
fn mk<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    if l.is_none() && r.is_none() {
        // keep "size <= LEAF_CAP implies leaf" true even for treaps
        Node::make_leaf(vec![e])
    } else {
        Node::make(l, e, (), r)
    }
}

fn join_rec<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    let pl = prio::<S>(&l);
    let pr = prio::<S>(&r);
    if e.em >= pl && e.em >= pr {
        mk(l, e, r)
    } else if pl >= pr {
        // the left root keeps the top of the heap
        let (ll, le, _m, lr) = expose(l.expect("nonempty by priority"));
        mk(ll, le, Some(join_rec::<S>(lr, e, r)))
    } else {
        let (rl, re, _m, rr) = expose(r.expect("nonempty by priority"));
        mk(Some(join_rec::<S>(l, e, rl)), re, rr)
    }
}

impl Balance for Treap {
    type Meta = ();
    type EntryMeta = u64; // priority (max-heap)
    const NAME: &'static str = "treap";
    const LEAF_CAP: usize = 1;

    #[inline]
    fn leaf_meta() {}

    #[inline]
    fn fresh_entry_meta() -> u64 {
        // never return 0 so real entries always outrank the empty tree
        // relaxed: only uniqueness of the seed matters, not order —
        // any interleaving of fetch_adds yields distinct priorities
        splitmix64(PRIO_SEED.fetch_add(1, Ordering::Relaxed)) | 1
    }

    fn join<S: AugSpec>(l: Tree<S, Self>, e: EntryOwned<S, Self>, r: Tree<S, Self>) -> N<S> {
        join_rec::<S>(l, e, r)
    }

    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool {
        match n {
            Node::Leaf(l) => l.entries.len() == 1,
            Node::Internal(x) => {
                let ok_l = x.left.as_deref().is_none_or(|l| x.em >= node_prio(l));
                let ok_r = x.right.as_deref().is_none_or(|r| x.em >= node_prio(r));
                ok_l && ok_r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priorities_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let p = <Treap as Balance>::fresh_entry_meta();
            assert_ne!(p, 0);
            assert!(seen.insert(p), "duplicate priority");
        }
    }
}
