//! Balancing schemes, fully abstracted behind a single `join`.
//!
//! Following the paper (§4) and "Just Join for Parallel Ordered Sets"
//! [Blelloch, Ferizovic, Sun; SPAA 2016], *every* algorithm in this crate
//! is written against one balance-aware primitive:
//!
//! ```text
//! join(L, (k, v), R)   where max(L) < k < min(R)
//! ```
//!
//! which concatenates two balanced trees around a middle entry and
//! rebalances. Because the balancing criteria are encapsulated here, the
//! same `union`/`filter`/`build`/... code runs unchanged on all four
//! schemes the paper implements:
//!
//! * [`WeightBalanced`] — PAM's default ("it does not require extra
//!   balancing criteria in each node — the node size is already stored");
//! * [`Avl`] — height-balanced;
//! * [`RedBlack`] — color + black-height balanced;
//! * [`Treap`] — randomized heap-ordered priorities.

mod avl;
mod redblack;
mod treap;
mod weight;

pub use avl::Avl;
pub use redblack::{RbMeta, RedBlack};
pub use treap::Treap;
pub use weight::WeightBalanced;

use crate::node::{EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::Arc;

/// A balancing scheme: per-node metadata plus the `join` primitive.
///
/// `join` is the **only** operation that creates or restructures interior
/// nodes, so it is also where augmented values get recomputed (inside
/// `Node::make`) and where persistence-driven path copying happens
/// (via [`crate::node::expose`]).
pub trait Balance: Sized + Send + Sync + 'static {
    /// Per-node metadata derived from the node's position/children
    /// (AVL height; red-black color and black height; nothing for
    /// weight-balanced trees, whose criterion reads the stored sizes).
    type Meta: Copy + Send + Sync + std::fmt::Debug + 'static;

    /// Per-*entry* metadata that stays attached to a key as the tree is
    /// restructured (the treap's priority; nothing for the other schemes).
    type EntryMeta: Copy + Send + Sync + std::fmt::Debug + 'static;

    /// Human-readable scheme name (used by benches and error messages).
    const NAME: &'static str;

    /// Metadata for a brand-new entry (draws a random priority for treaps).
    fn fresh_entry_meta() -> Self::EntryMeta;

    /// Join `l`, the middle entry, and `r`, where every key of `l` is less
    /// than `e.key` and every key of `r` greater. Returns a balanced tree
    /// containing all entries. O(|rank(l) - rank(r)|) work.
    fn join<S: AugSpec>(
        l: Tree<S, Self>,
        e: EntryOwned<S, Self>,
        r: Tree<S, Self>,
    ) -> Arc<Node<S, Self>>;

    /// Does the balance invariant hold *locally* at `n`, assuming both
    /// children are themselves valid? Used by `validate::check_tree`.
    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool;
}

/// Convenience wrapper returning a `Tree` instead of an `Arc<Node>`.
#[inline]
pub(crate) fn join_tree<S: AugSpec, B: Balance>(
    l: Tree<S, B>,
    e: EntryOwned<S, B>,
    r: Tree<S, B>,
) -> Tree<S, B> {
    Some(B::join(l, e, r))
}

/// Build a singleton map (a `join` of two empty trees, as in the paper).
#[inline]
pub(crate) fn singleton<S: AugSpec, B: Balance>(key: S::K, val: S::V) -> Tree<S, B> {
    Some(B::join(
        None,
        EntryOwned {
            key,
            val,
            em: B::fresh_entry_meta(),
        },
        None,
    ))
}
