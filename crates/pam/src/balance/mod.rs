//! Balancing schemes, fully abstracted behind a single `join`.
//!
//! Following the paper (§4) and "Just Join for Parallel Ordered Sets"
//! [Blelloch, Ferizovic, Sun; SPAA 2016], *every* algorithm in this crate
//! is written against one balance-aware primitive:
//!
//! ```text
//! join(L, (k, v), R)   where max(L) < k < min(R)
//! ```
//!
//! which concatenates two balanced trees around a middle entry and
//! rebalances. Because the balancing criteria are encapsulated here, the
//! same `union`/`filter`/`build`/... code runs unchanged on all four
//! schemes the paper implements:
//!
//! * [`WeightBalanced`] — PAM's default ("it does not require extra
//!   balancing criteria in each node — the node size is already stored");
//! * [`Avl`] — height-balanced;
//! * [`RedBlack`] — color + black-height balanced;
//! * [`Treap`] — randomized heap-ordered priorities.
//!
//! # Blocked leaves
//!
//! With PaC-tree-style leaf blocks (see [`crate::node`]), the crate-facing
//! join is `join_tree`, which wraps the scheme's raw [`Balance::join`]
//! with block maintenance when [`Balance::LEAF_CAP`] `>= 2`:
//!
//! * if both sides fit in a block, the result is flattened and re-packed
//!   into one full leaf (or one internal node over two half-full leaves);
//! * if one side is an *underfull* block (fewer than `LEAF_CAP / 2`
//!   entries, e.g. a fragment produced by exposing a leaf), the join
//!   descends the other side's spine so the fragment merges into its
//!   boundary blocks;
//! * otherwise both sides satisfy the fill invariant and the raw scheme
//!   join applies unchanged.
//!
//! This preserves, inductively, the invariants `validate` checks: any
//! tree of `<= LEAF_CAP` entries is a single leaf, internal nodes root
//! more than `LEAF_CAP` entries, and every non-root leaf holds
//! `LEAF_CAP/2 ..= LEAF_CAP` entries. With `LEAF_CAP == 1` (the treap,
//! or a `PAM_LEAF_B=1` build) `join_tree` degenerates to the raw join
//! and the tree is exactly the paper's one-entry-per-node structure.

mod avl;
mod redblack;
mod treap;
mod weight;

pub use avl::Avl;
pub use redblack::{RbMeta, RedBlack};
pub use treap::Treap;
pub use weight::{WeightBalanced, WeightBalancedCap};

use crate::node::{expose, flatten_into, size, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::Arc;

/// A balancing scheme: per-node metadata plus the `join` primitive.
///
/// `join` is the **only** operation that creates or restructures interior
/// nodes, so it is also where augmented values get recomputed (inside
/// `Node::make`) and where persistence-driven path copying happens
/// (via [`crate::node::expose`]).
pub trait Balance: Sized + Send + Sync + 'static {
    /// Per-node metadata derived from the node's position/children
    /// (AVL height; red-black color and black height; nothing for
    /// weight-balanced trees, whose criterion reads the stored sizes).
    type Meta: Copy + Send + Sync + std::fmt::Debug + 'static;

    /// Per-*entry* metadata that stays attached to a key as the tree is
    /// restructured (the treap's priority; nothing for the other schemes).
    type EntryMeta: Copy + Send + Sync + std::fmt::Debug + 'static;

    /// Human-readable scheme name (used by benches and error messages).
    const NAME: &'static str;

    /// Maximum number of entries a leaf block may hold. Must be 1 or an
    /// even number `>= 2` (even capacities make the half-full invariant
    /// achievable when splitting an overflowing block at the median).
    /// Treaps pin this to 1: their heap order is a property of individual
    /// entries, so blocks would have no meaningful priority.
    const LEAF_CAP: usize = crate::node::DEFAULT_LEAF_B;

    /// The metadata a leaf node *implies* (leaves store none): height 1
    /// for AVL, black with black-height 1 for red-black, unit otherwise.
    /// Returned by `expose` when it splits a leaf block.
    fn leaf_meta() -> Self::Meta;

    /// Metadata for a brand-new entry (draws a random priority for treaps).
    fn fresh_entry_meta() -> Self::EntryMeta;

    /// Join `l`, the middle entry, and `r`, where every key of `l` is less
    /// than `e.key` and every key of `r` greater. Returns a balanced tree
    /// containing all entries. O(|rank(l) - rank(r)|) work.
    ///
    /// This is the *raw* scheme join: it treats leaf blocks as opaque
    /// height-1 nodes and never re-packs them. Callers inside the crate
    /// use `join_tree`, which layers the fill-invariant maintenance on
    /// top; the preconditions there guarantee the raw join never needs to
    /// rotate through a multi-entry leaf.
    fn join<S: AugSpec>(
        l: Tree<S, Self>,
        e: EntryOwned<S, Self>,
        r: Tree<S, Self>,
    ) -> Arc<Node<S, Self>>;

    /// Does the balance invariant hold *locally* at `n`, assuming both
    /// children are themselves valid? Used by `validate::check_tree`.
    /// Leaf blocks are trivially balanced.
    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool;
}

/// The crate-facing join: [`Balance::join`] plus leaf-block maintenance.
///
/// Preconditions match `join`: `max(L) < e.key < min(R)`, and both sides
/// are either valid trees or block fragments (leaves of any fill produced
/// by `expose`). The result restores all fill invariants.
pub(crate) fn join_tree<S: AugSpec, B: Balance>(
    l: Tree<S, B>,
    e: EntryOwned<S, B>,
    r: Tree<S, B>,
) -> Tree<S, B> {
    Some(join_blocked(l, e, r))
}

fn join_blocked<S: AugSpec, B: Balance>(
    l: Tree<S, B>,
    e: EntryOwned<S, B>,
    r: Tree<S, B>,
) -> Arc<Node<S, B>> {
    let cap = B::LEAF_CAP;
    if cap <= 1 {
        // Degenerate blocks: the raw join is already the whole story.
        return B::join(l, e, r);
    }
    let nl = size(&l);
    let nr = size(&r);
    if nl <= cap && nr <= cap {
        // Both sides are blocks (by the size<=cap => leaf invariant, or
        // fragments from exposing a leaf): flatten the <= 2*cap+1 entries
        // and re-pack into one leaf or two half-full leaves.
        let mut entries = Vec::with_capacity(nl + nr + 1);
        flatten_into(l, &mut entries);
        entries.push(e);
        flatten_into(r, &mut entries);
        return pack_block::<S, B>(entries);
    }
    let min_fill = cap / 2;
    if nr < min_fill {
        // Right side is an underfull fragment and the left is internal
        // (nl > cap): peel the left root and push the fragment down the
        // right spine until it merges with a boundary block.
        let (a, p, _m, b) = expose(l.expect("nl > cap implies nonempty"));
        let t = join_blocked(b, e, r);
        return B::join(a, p, Some(t));
    }
    if nl < min_fill {
        let (a, p, _m, b) = expose(r.expect("nr > cap implies nonempty"));
        let t = join_blocked(l, e, a);
        return B::join(Some(t), p, b);
    }
    // Both sides satisfy the fill invariant: the raw scheme join attaches
    // whole blocks without ever looking inside them.
    B::join(l, e, r)
}

/// Pack `1..=2*LEAF_CAP+1` sorted entries into a single leaf, or an
/// internal node over two at-least-half-full leaves.
fn pack_block<S: AugSpec, B: Balance>(mut entries: Vec<EntryOwned<S, B>>) -> Arc<Node<S, B>> {
    let cap = B::LEAF_CAP;
    if entries.len() <= cap {
        return Node::make_leaf(entries);
    }
    // len in cap+1 ..= 2*cap+1: split at the median. With even cap both
    // halves land in cap/2 ..= cap.
    let mid = entries.len() / 2;
    let mut right = entries.split_off(mid);
    let pivot = right.remove(0);
    B::join(
        Some(Node::make_leaf(entries)),
        pivot,
        Some(Node::make_leaf(right)),
    )
}

/// Build a tree from sorted, strictly-increasing entries by packing full
/// blocks bottom-up (median recursion, so every leaf lands in
/// `LEAF_CAP/2 ..= LEAF_CAP`). The bulk-load primitive behind
/// `from_sorted_distinct` and the leaf fast paths of `multi_insert`.
pub(crate) fn from_sorted_entries<S: AugSpec, B: Balance>(
    mut entries: Vec<EntryOwned<S, B>>,
) -> Tree<S, B> {
    if entries.is_empty() {
        return None;
    }
    if entries.len() <= B::LEAF_CAP.max(1) {
        return Some(Node::make_leaf(entries));
    }
    let mid = entries.len() / 2;
    let mut right = entries.split_off(mid);
    let pivot = right.remove(0);
    let l = from_sorted_entries::<S, B>(entries);
    let r = from_sorted_entries::<S, B>(right);
    Some(join_blocked(l, pivot, r))
}

/// Flatten `(l, e, r)` into sorted entries and re-pack into a perfectly
/// balanced blocked tree. The schemes' rotation fallback: a double
/// rotation whose inner child is a leaf block would split the block
/// mid-tree (stranding underfull fragments), so the scheme re-packs the
/// whole region instead. Callers only reach this with O(LEAF_CAP)-sized
/// regions, and the re-pack's internal joins are all trivially balanced
/// (equal-weight halves), so this never re-enters a rotation.
pub(crate) fn repack_region<S: AugSpec, B: Balance>(
    l: Tree<S, B>,
    e: EntryOwned<S, B>,
    r: Tree<S, B>,
) -> Arc<Node<S, B>> {
    let mut entries = Vec::with_capacity(size(&l) + size(&r) + 1);
    flatten_into(l, &mut entries);
    entries.push(e);
    flatten_into(r, &mut entries);
    from_sorted_entries::<S, B>(entries).expect("region is nonempty")
}

/// Build a singleton map (a one-entry leaf block).
#[inline]
pub(crate) fn singleton<S: AugSpec, B: Balance>(key: S::K, val: S::V) -> Tree<S, B> {
    Some(Node::make_leaf(vec![EntryOwned {
        key,
        val,
        em: B::fresh_entry_meta(),
    }]))
}
