//! AVL (height-balanced) trees.
//!
//! `join` follows Figure 1 of the SPAA'16 "Just Join" paper: walk down the
//! taller side until the subtree height is within one of the shorter side,
//! attach a node there, and fix the at-most-one height violation per level
//! with single/double rotations on the way back up. The per-node metadata
//! is the subtree height.
//!
//! With blocked leaves, a leaf block counts as height 1 regardless of how
//! many entries it holds — internal height bookkeeping is oblivious to
//! blocking. The descent only exposes subtrees of height >= 2 (always
//! internal); rotations that would reach *inside* a block fall back to
//! [`super::repack_region`] on the (O(LEAF_CAP)-sized) region instead.

use super::{repack_region, Balance};
use crate::node::{expose, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::Arc;

/// Height-balanced AVL scheme.
pub struct Avl;

type T<S> = Tree<S, Avl>;
type N<S> = Arc<Node<S, Avl>>;
type E<S> = EntryOwned<S, Avl>;

#[inline]
fn h<S: AugSpec>(t: &T<S>) -> u32 {
    t.as_deref().map_or(0, node_h)
}

#[inline]
fn node_h<S: AugSpec>(n: &Node<S, Avl>) -> u32 {
    match n {
        Node::Leaf(_) => 1,
        Node::Internal(x) => x.meta,
    }
}

#[inline]
fn mk<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    let height = 1 + h::<S>(&l).max(h::<S>(&r));
    Node::make(l, e, height, r)
}

/// Left rotation of the (conceptual) node `(l, e, r)` where `r` is real.
/// If `r` is a leaf block the rotation would split it, so the region —
/// O(LEAF_CAP) at every call site that can pass a leaf — is re-packed.
fn rot_left_parts<S: AugSpec>(l: T<S>, e: E<S>, r: N<S>) -> N<S> {
    if r.is_leaf() {
        return repack_region(l, e, Some(r));
    }
    let (rl, re, _m, rr) = expose(r);
    mk(Some(mk(l, e, rl)), re, rr)
}

/// Right rotation of the (conceptual) node `(l, e, r)` where `l` is real.
fn rot_right_parts<S: AugSpec>(l: N<S>, e: E<S>, r: T<S>) -> N<S> {
    if l.is_leaf() {
        return repack_region(Some(l), e, r);
    }
    let (ll, le, _m, lr) = expose(l);
    mk(ll, le, Some(mk(lr, e, r)))
}

/// Precondition: `h(tl) > h(tr) + 1`.
fn join_right<S: AugSpec>(tl: T<S>, e: E<S>, tr: T<S>) -> N<S> {
    let (l, le, _m, c) = expose(tl.expect("taller side cannot be empty"));
    if h::<S>(&c) <= h::<S>(&tr) + 1 {
        let t1 = mk(c, e, tr);
        if node_h(&t1) <= h::<S>(&l) + 1 {
            mk(l, le, Some(t1))
        } else {
            // t1 is left-leaning (h(c) = h(tr)+1): double rotation.
            rot_left_parts(l, le, rot_right_whole(t1))
        }
    } else {
        let t1 = join_right::<S>(c, e, tr);
        let h1 = node_h(&t1);
        if h1 <= h::<S>(&l) + 1 {
            mk(l, le, Some(t1))
        } else {
            rot_left_parts(l, le, t1)
        }
    }
}

/// Right rotation of a real node (root becomes its left child).
fn rot_right_whole<S: AugSpec>(n: N<S>) -> N<S> {
    if n.is_leaf() {
        return n;
    }
    let (l, e, _m, r) = expose(n);
    match l {
        Some(l) => rot_right_parts(l, e, r),
        None => mk(None, e, r),
    }
}

/// Left rotation of a real node (root becomes its right child).
fn rot_left_whole<S: AugSpec>(n: N<S>) -> N<S> {
    if n.is_leaf() {
        return n;
    }
    let (l, e, _m, r) = expose(n);
    match r {
        Some(r) => rot_left_parts(l, e, r),
        None => mk(l, e, None),
    }
}

/// Mirror of [`join_right`]; precondition `h(tr) > h(tl) + 1`.
fn join_left<S: AugSpec>(tl: T<S>, e: E<S>, tr: T<S>) -> N<S> {
    let (c, re, _m, r) = expose(tr.expect("taller side cannot be empty"));
    if h::<S>(&c) <= h::<S>(&tl) + 1 {
        let t1 = mk(tl, e, c);
        if node_h(&t1) <= h::<S>(&r) + 1 {
            mk(Some(t1), re, r)
        } else {
            rot_right_parts(rot_left_whole(t1), re, r)
        }
    } else {
        let t1 = join_left::<S>(tl, e, c);
        let h1 = node_h(&t1);
        if h1 <= h::<S>(&r) + 1 {
            mk(Some(t1), re, r)
        } else {
            rot_right_parts(t1, re, r)
        }
    }
}

impl Balance for Avl {
    type Meta = u32; // subtree height
    type EntryMeta = ();
    const NAME: &'static str = "avl";

    #[inline]
    fn leaf_meta() -> u32 {
        1
    }

    #[inline]
    fn fresh_entry_meta() {}

    fn join<S: AugSpec>(l: Tree<S, Self>, e: EntryOwned<S, Self>, r: Tree<S, Self>) -> N<S> {
        let hl = h::<S>(&l);
        let hr = h::<S>(&r);
        if hl > hr + 1 {
            join_right::<S>(l, e, r)
        } else if hr > hl + 1 {
            join_left::<S>(l, e, r)
        } else {
            mk(l, e, r)
        }
    }

    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool {
        match n {
            Node::Leaf(_) => true,
            Node::Internal(x) => {
                let hl = h::<S>(&x.left);
                let hr = h::<S>(&x.right);
                x.meta == 1 + hl.max(hr) && hl.abs_diff(hr) <= 1
            }
        }
    }
}
