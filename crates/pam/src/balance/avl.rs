//! AVL (height-balanced) trees.
//!
//! `join` follows Figure 1 of the SPAA'16 "Just Join" paper: walk down the
//! taller side until the subtree height is within one of the shorter side,
//! attach a node there, and fix the at-most-one height violation per level
//! with single/double rotations on the way back up. The per-node metadata
//! is the subtree height.

use super::Balance;
use crate::node::{expose, EntryOwned, Node, Tree};
use crate::spec::AugSpec;
use std::sync::Arc;

/// Height-balanced AVL scheme.
pub struct Avl;

type T<S> = Tree<S, Avl>;
type N<S> = Arc<Node<S, Avl>>;
type E<S> = EntryOwned<S, Avl>;

#[inline]
fn h<S: AugSpec>(t: &T<S>) -> u32 {
    t.as_ref().map_or(0, |n| n.meta)
}

#[inline]
fn mk<S: AugSpec>(l: T<S>, e: E<S>, r: T<S>) -> N<S> {
    let height = 1 + h::<S>(&l).max(h::<S>(&r));
    Node::make(l, e, height, r)
}

/// Left rotation of the (conceptual) node `(l, e, r)` where `r` is real.
fn rot_left_parts<S: AugSpec>(l: T<S>, e: E<S>, r: N<S>) -> N<S> {
    let (rl, re, _m, rr) = expose(r);
    mk(Some(mk(l, e, rl)), re, rr)
}

/// Right rotation of the (conceptual) node `(l, e, r)` where `l` is real.
fn rot_right_parts<S: AugSpec>(l: N<S>, e: E<S>, r: T<S>) -> N<S> {
    let (ll, le, _m, lr) = expose(l);
    mk(ll, le, Some(mk(lr, e, r)))
}

/// Precondition: `h(tl) > h(tr) + 1`.
fn join_right<S: AugSpec>(tl: T<S>, e: E<S>, tr: T<S>) -> N<S> {
    let (l, le, _m, c) = expose(tl.expect("taller side cannot be empty"));
    if h::<S>(&c) <= h::<S>(&tr) + 1 {
        let t1 = mk(c, e, tr);
        if t1.meta <= h::<S>(&l) + 1 {
            mk(l, le, Some(t1))
        } else {
            // t1 is left-leaning (h(c) = h(tr)+1): double rotation.
            rot_left_parts(l, le, rot_right_whole(t1))
        }
    } else {
        let t1 = join_right::<S>(c, e, tr);
        let h1 = t1.meta;
        if h1 <= h::<S>(&l) + 1 {
            mk(l, le, Some(t1))
        } else {
            rot_left_parts(l, le, t1)
        }
    }
}

/// Right rotation of a real node (root becomes its left child).
fn rot_right_whole<S: AugSpec>(n: N<S>) -> N<S> {
    let (l, e, _m, r) = expose(n);
    rot_right_parts(l.expect("rotation requires left child"), e, r)
}

/// Left rotation of a real node (root becomes its right child).
fn rot_left_whole<S: AugSpec>(n: N<S>) -> N<S> {
    let (l, e, _m, r) = expose(n);
    rot_left_parts(l, e, r.expect("rotation requires right child"))
}

/// Mirror of [`join_right`]; precondition `h(tr) > h(tl) + 1`.
fn join_left<S: AugSpec>(tl: T<S>, e: E<S>, tr: T<S>) -> N<S> {
    let (c, re, _m, r) = expose(tr.expect("taller side cannot be empty"));
    if h::<S>(&c) <= h::<S>(&tl) + 1 {
        let t1 = mk(tl, e, c);
        if t1.meta <= h::<S>(&r) + 1 {
            mk(Some(t1), re, r)
        } else {
            rot_right_parts(rot_left_whole(t1), re, r)
        }
    } else {
        let t1 = join_left::<S>(tl, e, c);
        let h1 = t1.meta;
        if h1 <= h::<S>(&r) + 1 {
            mk(Some(t1), re, r)
        } else {
            rot_right_parts(t1, re, r)
        }
    }
}

impl Balance for Avl {
    type Meta = u32; // subtree height
    type EntryMeta = ();
    const NAME: &'static str = "avl";

    #[inline]
    fn fresh_entry_meta() {}

    fn join<S: AugSpec>(l: Tree<S, Self>, e: EntryOwned<S, Self>, r: Tree<S, Self>) -> N<S> {
        let hl = h::<S>(&l);
        let hr = h::<S>(&r);
        if hl > hr + 1 {
            join_right::<S>(l, e, r)
        } else if hr > hl + 1 {
            join_left::<S>(l, e, r)
        } else {
            mk(l, e, r)
        }
    }

    fn local_ok<S: AugSpec>(n: &Node<S, Self>) -> bool {
        let hl = h::<S>(&n.left);
        let hr = h::<S>(&n.right);
        n.meta == 1 + hl.max(hr) && hl.abs_diff(hr) <= 1
    }
}
