//! Sequential in-order iteration.

use crate::balance::Balance;
use crate::node::{Node, Tree};
use crate::spec::AugSpec;

/// Borrowing in-order iterator over `(key, value)` pairs.
pub struct Iter<'a, S: AugSpec, B: Balance> {
    stack: Vec<&'a Node<S, B>>,
    remaining: usize,
}

impl<'a, S: AugSpec, B: Balance> Iter<'a, S, B> {
    pub(crate) fn new(t: &'a Tree<S, B>) -> Self {
        let mut it = Iter {
            stack: Vec::with_capacity(48),
            remaining: crate::node::size(t),
        };
        it.push_left_spine(t);
        it
    }

    fn push_left_spine(&mut self, mut t: &'a Tree<S, B>) {
        while let Some(n) = t.as_deref() {
            self.stack.push(n);
            t = &n.left;
        }
    }
}

impl<'a, S: AugSpec, B: Balance> Iterator for Iter<'a, S, B> {
    type Item = (&'a S::K, &'a S::V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        self.push_left_spine(&n.right);
        self.remaining -= 1;
        Some((&n.key, &n.val))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, S: AugSpec, B: Balance> ExactSizeIterator for Iter<'a, S, B> {}

/// Borrowing in-order iterator over the keys in `[lo, hi]`, visiting
/// only the O(log n + output) relevant nodes — no sub-map is
/// materialized.
pub struct RangeIter<'a, S: AugSpec, B: Balance> {
    stack: Vec<&'a Node<S, B>>,
    hi: &'a S::K,
}

impl<'a, S: AugSpec, B: Balance> RangeIter<'a, S, B> {
    pub(crate) fn new(t: &'a Tree<S, B>, lo: &'a S::K, hi: &'a S::K) -> Self {
        let mut it = RangeIter {
            stack: Vec::with_capacity(48),
            hi,
        };
        it.push_ge_spine(t, lo);
        it
    }

    /// Push the spine of nodes whose keys are `>= lo` (like
    /// `push_left_spine` but skipping keys below the bound).
    fn push_ge_spine(&mut self, mut t: &'a Tree<S, B>, lo: &S::K) {
        while let Some(n) = t.as_deref() {
            if S::compare(&n.key, lo) == std::cmp::Ordering::Less {
                t = &n.right;
            } else {
                self.stack.push(n);
                t = &n.left;
            }
        }
    }
}

impl<'a, S: AugSpec, B: Balance> Iterator for RangeIter<'a, S, B> {
    type Item = (&'a S::K, &'a S::V);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        if S::compare(&n.key, self.hi) == std::cmp::Ordering::Greater {
            // everything still on the stack is even larger
            self.stack.clear();
            return None;
        }
        // successors of n within its right subtree
        let mut t = &n.right;
        while let Some(c) = t.as_deref() {
            self.stack.push(c);
            t = &c.left;
        }
        Some((&n.key, &n.val))
    }
}
