//! Sequential in-order iteration, built on the block-to-block
//! [`Cursor`](crate::cursor::Cursor): advancing inside a leaf block is one
//! slice step, and each internal node is visited exactly once per scan —
//! no per-entry re-descent.

use crate::balance::Balance;
use crate::cursor::Cursor;
use crate::node::Tree;
use crate::spec::AugSpec;

/// Borrowing in-order iterator over `(key, value)` pairs.
pub struct Iter<'a, S: AugSpec, B: Balance> {
    cur: Cursor<'a, S, B>,
    remaining: usize,
}

impl<'a, S: AugSpec, B: Balance> Iter<'a, S, B> {
    pub(crate) fn new(t: &'a Tree<S, B>) -> Self {
        Iter {
            cur: Cursor::first(t),
            remaining: crate::node::size(t),
        }
    }
}

impl<'a, S: AugSpec, B: Balance> Iterator for Iter<'a, S, B> {
    type Item = (&'a S::K, &'a S::V);

    fn next(&mut self) -> Option<Self::Item> {
        let item = self.cur.advance()?;
        self.remaining -= 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl<'a, S: AugSpec, B: Balance> ExactSizeIterator for Iter<'a, S, B> {}

/// Borrowing in-order iterator over the keys in `[lo, hi]`, visiting
/// only the O(log n + output) relevant nodes — no sub-map is
/// materialized.
pub struct RangeIter<'a, S: AugSpec, B: Balance> {
    cur: Cursor<'a, S, B>,
    hi: &'a S::K,
}

impl<'a, S: AugSpec, B: Balance> RangeIter<'a, S, B> {
    pub(crate) fn new(t: &'a Tree<S, B>, lo: &'a S::K, hi: &'a S::K) -> Self {
        RangeIter {
            cur: Cursor::seek(t, lo),
            hi,
        }
    }
}

impl<'a, S: AugSpec, B: Balance> Iterator for RangeIter<'a, S, B> {
    type Item = (&'a S::K, &'a S::V);

    fn next(&mut self) -> Option<Self::Item> {
        let (k, v) = self.cur.advance()?;
        if S::compare(k, self.hi) == std::cmp::Ordering::Greater {
            // everything after is even larger
            self.cur.exhaust();
            return None;
        }
        Some((k, v))
    }
}
