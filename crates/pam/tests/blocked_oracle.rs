//! Differential harness pinning the blocked-leaf refactor: random
//! operation sequences are replayed against a `BTreeMap` model, with
//! augmented values recomputed by a naive fold, at three block sizes —
//! `LEAF_CAP` = 1 (degenerate: the pre-refactor one-entry-per-leaf
//! shape), 2 (the smallest real block, maximal boundary churn), and 32
//! (the default). Every intermediate tree is invariant-checked, so any
//! fill/aug/balance violation is caught at the op that introduced it.

use pam::balance::WeightBalancedCap;
use pam::ops::split::{join2, split};
use pam::{AugMap, Balance, SumAug};
use proptest::prelude::*;
use std::collections::BTreeMap;

type Spec = SumAug<u32, u64>;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Remove(u32),
    MultiInsert(Vec<(u32, u64)>),
    MultiDelete(Vec<u32>),
    // split at k, drop the pivot, join the halves back: exercises the
    // block slicing + underfull-repair join paths while preserving a
    // model that is easy to mirror
    SplitJoinAround(u32),
    SplitKeepLeft(u32),
    SplitKeepRight(u32),
    Range(u32, u32),
    Filter(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0u32..300;
    let val = 0u64..1000;
    let pairs = proptest::collection::vec((0u32..300, 0u64..1000), 0..40);
    let keyvec = proptest::collection::vec(0u32..300, 0..40);
    prop_oneof![
        (key.clone(), val.clone()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        pairs.prop_map(Op::MultiInsert),
        keyvec.prop_map(Op::MultiDelete),
        key.clone().prop_map(Op::SplitJoinAround),
        key.clone().prop_map(Op::SplitKeepLeft),
        key.clone().prop_map(Op::SplitKeepRight),
        (key.clone(), key.clone()).prop_map(|(a, b)| Op::Range(a, b)),
        (1u32..7).prop_map(Op::Filter),
    ]
}

fn apply_model(model: &mut BTreeMap<u32, u64>, op: &Op) {
    match op {
        Op::Insert(k, v) => {
            model.insert(*k, *v);
        }
        Op::Remove(k) => {
            model.remove(k);
        }
        Op::MultiInsert(ps) => {
            for (k, v) in ps {
                model.insert(*k, *v);
            }
        }
        Op::MultiDelete(ks) => {
            for k in ks {
                model.remove(k);
            }
        }
        Op::SplitJoinAround(k) => {
            model.remove(k);
        }
        Op::SplitKeepLeft(k) => {
            *model = model.range(..*k).map(|(&k, &v)| (k, v)).collect();
        }
        Op::SplitKeepRight(k) => {
            let mut right: BTreeMap<u32, u64> = model.range(*k..).map(|(&k, &v)| (k, v)).collect();
            right.remove(k);
            *model = right;
        }
        Op::Range(a, b) => {
            let (lo, hi) = (*a.min(b), *a.max(b));
            *model = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        }
        Op::Filter(d) => {
            model.retain(|k, _| k % d == 0);
        }
    }
}

fn apply_map<B: Balance>(m: AugMap<Spec, B>, op: &Op) -> AugMap<Spec, B> {
    let mut m = m;
    match op {
        Op::Insert(k, v) => {
            m.insert(*k, *v);
            m
        }
        Op::Remove(k) => {
            m.remove(k);
            m
        }
        Op::MultiInsert(ps) => {
            m.multi_insert(ps.clone());
            m
        }
        Op::MultiDelete(ks) => {
            m.multi_delete(ks.clone());
            m
        }
        Op::SplitJoinAround(k) => {
            let (l, _v, r) = split(m.root().clone(), k);
            // both halves must independently be valid trees
            AugMap::from_root(l.clone()).check_invariants().unwrap();
            AugMap::from_root(r.clone()).check_invariants().unwrap();
            AugMap::from_root(join2(l, r))
        }
        Op::SplitKeepLeft(k) => {
            let (l, _v, _r) = split(m.root().clone(), k);
            AugMap::from_root(l)
        }
        Op::SplitKeepRight(k) => {
            let (_l, _v, r) = split(m.root().clone(), k);
            AugMap::from_root(r)
        }
        Op::Range(a, b) => m.range(a.min(b), a.max(b)),
        Op::Filter(d) => {
            let d = *d;
            m.filter(move |k, _| k % d == 0)
        }
    }
}

/// The naive fold the augmentation must equal: sum of values in key order.
fn naive_aug(model: &BTreeMap<u32, u64>) -> u64 {
    model.values().fold(0u64, |s, &v| s.wrapping_add(v))
}

/// An intermediate map version paired with its expected contents.
type Versions<B> = Vec<(AugMap<Spec, B>, Vec<(u32, u64)>)>;

fn run_oracle<B: Balance>(init: Vec<(u32, u64)>, ops: Vec<Op>, probes: Vec<(u32, u32)>) {
    let mut model: BTreeMap<u32, u64> = init.iter().copied().collect();
    let mut map: AugMap<Spec, B> = AugMap::build(init);
    let mut versions: Versions<B> = Vec::new();
    for op in &ops {
        versions.push((map.clone(), model.iter().map(|(&k, &v)| (k, v)).collect()));
        map = apply_map(map, op);
        apply_model(&mut model, op);
        map.check_invariants()
            .unwrap_or_else(|e| panic!("invariants after {op:?} (B={}): {e}", B::LEAF_CAP));
        let got = map.to_vec();
        let want: Vec<(u32, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "contents after {op:?} (B={})", B::LEAF_CAP);
        // augmentation vs naive fold, whole-map and ranged
        assert_eq!(map.aug_val(), naive_aug(&model), "aug after {op:?}");
        for &(a, b) in &probes {
            let (lo, hi) = (a.min(b), a.max(b));
            let want: u64 = model
                .range(lo..=hi)
                .fold(0u64, |s, (_, &v)| s.wrapping_add(v));
            assert_eq!(map.aug_range(&lo, &hi), want, "aug_range after {op:?}");
            let want_left: u64 = model
                .range(..=lo)
                .fold(0u64, |s, (_, &v)| s.wrapping_add(v));
            assert_eq!(map.aug_left(&lo), want_left, "aug_left after {op:?}");
            let want_right: u64 = model.range(hi..).fold(0u64, |s, (_, &v)| s.wrapping_add(v));
            assert_eq!(map.aug_right(&hi), want_right, "aug_right after {op:?}");
        }
    }
    // persistence: every intermediate version is intact
    for (v, expect) in versions {
        assert_eq!(
            v.to_vec(),
            expect,
            "old version mutated (B={})",
            B::LEAF_CAP
        );
        v.check_invariants().expect("old version invariants");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn oracle_block_size_1(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 0..120),
        ops in proptest::collection::vec(op_strategy(), 1..20),
        probes in proptest::collection::vec((0u32..320, 0u32..320), 1..4),
    ) {
        run_oracle::<WeightBalancedCap<1>>(init, ops, probes);
    }

    #[test]
    fn oracle_block_size_2(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 0..120),
        ops in proptest::collection::vec(op_strategy(), 1..20),
        probes in proptest::collection::vec((0u32..320, 0u32..320), 1..4),
    ) {
        run_oracle::<WeightBalancedCap<2>>(init, ops, probes);
    }

    #[test]
    fn oracle_block_size_32(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 0..120),
        ops in proptest::collection::vec(op_strategy(), 1..20),
        probes in proptest::collection::vec((0u32..320, 0u32..320), 1..4),
    ) {
        run_oracle::<WeightBalancedCap<32>>(init, ops, probes);
    }

    #[test]
    fn cursor_full_scan_equals_iter(
        init in proptest::collection::vec((0u32..500, 0u64..1000), 0..200),
    ) {
        let m: AugMap<Spec, WeightBalancedCap<2>> = AugMap::build(init.clone());
        let mut c = m.cursor();
        let mut scanned = Vec::new();
        while let Some((k, v)) = c.advance() {
            scanned.push((*k, *v));
        }
        let via_iter: Vec<(u32, u64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(scanned, via_iter);
        prop_assert!(c.is_exhausted());

        let m32: AugMap<Spec, WeightBalancedCap<32>> = AugMap::build(init);
        let mut c = m32.cursor();
        let mut scanned = Vec::new();
        while let Some((k, v)) = c.advance() {
            scanned.push((*k, *v));
        }
        prop_assert_eq!(scanned, m32.to_vec());
    }

    #[test]
    fn cursor_seek_then_advance_equals_range(
        init in proptest::collection::vec((0u32..500, 0u64..1000), 0..200),
        a in 0u32..520,
        b in 0u32..520,
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        let m: AugMap<Spec, WeightBalancedCap<32>> = AugMap::build(init);
        let mut c = m.cursor_at(&lo);
        let mut got = Vec::new();
        while let Some((&k, &v)) = c.peek() {
            if k > hi {
                break;
            }
            c.advance();
            got.push((k, v));
        }
        let want: Vec<(u32, u64)> = m.iter_range(&lo, &hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn cursor_stable_across_snapshot_while_live_map_mutates(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 1..150),
        edits in proptest::collection::vec((0u32..300, 0u64..1000), 1..60),
    ) {
        let mut live: AugMap<Spec, WeightBalancedCap<32>> = AugMap::build(init);
        let snapshot = live.clone();
        let expect = snapshot.to_vec();
        let mut c = snapshot.cursor();
        let mut got = Vec::new();
        // interleave cursor advances with mutations of the live map:
        // path copying must never disturb the snapshot's blocks
        let mut ei = 0;
        while let Some((k, v)) = c.advance() {
            got.push((*k, *v));
            if ei < edits.len() {
                let (ek, ev) = edits[ei];
                if ev % 3 == 0 {
                    live.remove(&ek);
                } else {
                    live.insert(ek, ev);
                }
                ei += 1;
            }
        }
        prop_assert_eq!(got, expect);
        live.check_invariants().unwrap();
    }
}
