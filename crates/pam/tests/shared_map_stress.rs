//! Multi-threaded stress tests for `SharedMap` snapshot isolation.
//!
//! Two properties are hammered here:
//!
//! 1. **No partial commits.** Every commit installs a key set satisfying a
//!    whole-batch invariant (each batch inserts a *pair* of keys `k` and
//!    `MIRROR + k` with equal values). A reader snapshot taken at any
//!    moment must satisfy the invariant exactly — seeing one half of a
//!    batch would mean the swap was not atomic.
//! 2. **Old snapshots are frozen.** Snapshots pinned before a wave of
//!    commits must hash identically after the wave, and must still pass
//!    the structural invariant checks.

use pam::{AugMap, SharedMap, SumAug};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

type Spec = SumAug<u64, u64>;
type Shared = SharedMap<Spec>;

const MIRROR: u64 = 1 << 32;

fn fingerprint(m: &AugMap<Spec>) -> u64 {
    m.map_reduce(
        |&k, &v| k.wrapping_mul(0x9e3779b97f4a7c15) ^ v,
        u64::wrapping_add,
        0,
    )
}

/// Readers racing writers never observe half of a commit batch.
#[test]
fn readers_never_observe_partial_commits() {
    let shared = Arc::new(Shared::default());
    let stop = Arc::new(AtomicBool::new(false));
    let writer_threads = 4u64;
    let reader_threads = 4;
    let batches_per_writer = 150u64;

    let readers: Vec<_> = (0..reader_threads)
        .map(|_| {
            let s = shared.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut observed = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let snap = s.snapshot();
                    // batch atomicity: k present <=> MIRROR + k present,
                    // with the same value. The low and high halves of the
                    // key space are mirror images.
                    let low = snap.range(&0, &(MIRROR - 1));
                    let high = snap.down_to(&MIRROR);
                    assert_eq!(low.len(), high.len(), "half a batch is visible");
                    let lo_fp = low.map_reduce(
                        |&k, &v| k.wrapping_mul(31).wrapping_add(v),
                        u64::wrapping_add,
                        0,
                    );
                    let hi_fp = high.map_reduce(
                        |&k, &v| (k - MIRROR).wrapping_mul(31).wrapping_add(v),
                        u64::wrapping_add,
                        0,
                    );
                    assert_eq!(lo_fp, hi_fp, "mirror halves diverged mid-commit");
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    let writers: Vec<_> = (0..writer_threads)
        .map(|t| {
            let s = shared.clone();
            std::thread::spawn(move || {
                for i in 0..batches_per_writer {
                    let k = t * batches_per_writer + i;
                    let v = k.wrapping_mul(7);
                    s.commit_cas(|mut m| {
                        m.multi_insert(vec![(k, v), (MIRROR + k, v)]);
                        m
                    });
                }
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total_reads: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total_reads > 0, "readers must have raced the writers");

    let final_map = shared.snapshot();
    assert_eq!(
        final_map.len() as u64,
        2 * writer_threads * batches_per_writer
    );
    final_map.check_invariants().unwrap();
}

/// Snapshots pinned at arbitrary points stay bit-for-bit stable while
/// hundreds of later commits (inserts *and* deletes) land.
#[test]
fn pinned_snapshots_survive_later_commits() {
    let shared = Arc::new(Shared::default());
    shared.commit(|mut m| {
        m.multi_insert((0..2_000u64).map(|k| (k, k)).collect());
        m
    });

    // pin snapshots concurrently with a writer that keeps churning
    let pinner = {
        let s = shared.clone();
        std::thread::spawn(move || {
            let mut pins: Vec<(AugMap<Spec>, u64, u64)> = Vec::new();
            for _ in 0..200 {
                let (snap, ver) = s.snapshot_versioned();
                let fp = fingerprint(&snap);
                pins.push((snap, ver, fp));
            }
            pins
        })
    };

    let churner = {
        let s = shared.clone();
        std::thread::spawn(move || {
            for round in 0..300u64 {
                s.commit_cas(|mut m| {
                    m.multi_insert((0..20).map(|i| (10_000 + round * 20 + i, round)).collect());
                    m.multi_delete((0..5).map(|i| (round * 5 + i) % 2_000).collect());
                    m
                });
            }
        })
    };

    let pins = pinner.join().unwrap();
    churner.join().unwrap();

    // versions are monotone in pin order, and every pinned snapshot's
    // fingerprint is unchanged by the 300 commits that followed
    for w in pins.windows(2) {
        assert!(w[0].1 <= w[1].1, "snapshot versions must be monotone");
    }
    for (snap, _, fp) in &pins {
        assert_eq!(fingerprint(snap), *fp, "pinned snapshot mutated");
        snap.check_invariants().unwrap();
    }
    // 1 seeding commit + 300 churn commits
    assert_eq!(shared.version(), 301);
}

/// Many optimistic writers + O(1)-swap discipline: every update survives,
/// version counter counts every commit exactly once.
#[test]
fn optimistic_writers_converge() {
    let shared = Arc::new(Shared::default());
    let threads = 8u64;
    let per = 100u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let s = shared.clone();
            std::thread::spawn(move || {
                let mut retries = 0u64;
                for i in 0..per {
                    let base = (t * per + i) * 3;
                    let batch: Vec<(u64, u64)> = (0..3).map(|j| (base + j, t)).collect();
                    let (_, r) = s.commit_cas(|mut m| {
                        m.multi_insert(batch.clone());
                        m
                    });
                    retries += r;
                }
                retries
            })
        })
        .collect();
    let _total_retries: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(shared.len() as u64, threads * per * 3);
    assert_eq!(shared.version(), threads * per);
    shared.snapshot().check_invariants().unwrap();
}
