//! Cross-scheme agreement: the same operation sequence must produce the
//! same *map* (entries and augmented values) under every balancing
//! scheme — the strongest form of §4's claim that balancing is fully
//! abstracted behind `join`.

use pam::{AugMap, Avl, Balance, RedBlack, SumAug, Treap, WeightBalanced};
use proptest::prelude::*;

type Spec = SumAug<u32, u64>;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Remove(u32),
    UnionWith(Vec<(u32, u64)>),
    Filter(u32),
    Range(u32, u32),
    MultiDelete(Vec<u32>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..200, 0u64..500).prop_map(|(k, v)| Op::Insert(k, v)),
        (0u32..200).prop_map(Op::Remove),
        proptest::collection::vec((0u32..200, 0u64..500), 0..30).prop_map(Op::UnionWith),
        (1u32..6).prop_map(Op::Filter),
        (0u32..200, 0u32..200).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
        proptest::collection::vec(0u32..200, 0..20).prop_map(Op::MultiDelete),
    ]
}

fn apply<B: Balance>(m: AugMap<Spec, B>, op: &Op) -> AugMap<Spec, B> {
    let mut m = m;
    match op {
        Op::Insert(k, v) => {
            m.insert(*k, *v);
            m
        }
        Op::Remove(k) => {
            m.remove(k);
            m
        }
        Op::UnionWith(ps) => {
            let other: AugMap<Spec, B> = AugMap::build(ps.clone());
            m.union_with(other, |a, b| a.wrapping_add(*b))
        }
        Op::Filter(d) => {
            let d = *d;
            m.filter(move |k, _| k % d != 0)
        }
        Op::Range(lo, hi) => m.range(lo, hi),
        Op::MultiDelete(ks) => {
            m.multi_delete(ks.clone());
            m
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_schemes_agree(
        init in proptest::collection::vec((0u32..200, 0u64..500), 0..80),
        ops in proptest::collection::vec(op_strategy(), 1..20),
    ) {
        let mut wb: AugMap<Spec, WeightBalanced> = AugMap::build(init.clone());
        let mut avl: AugMap<Spec, Avl> = AugMap::build(init.clone());
        let mut rb: AugMap<Spec, RedBlack> = AugMap::build(init.clone());
        let mut tr: AugMap<Spec, Treap> = AugMap::build(init);
        for op in &ops {
            wb = apply(wb, op);
            avl = apply(avl, op);
            rb = apply(rb, op);
            tr = apply(tr, op);
            let expect = wb.to_vec();
            prop_assert_eq!(avl.to_vec(), expect.clone(), "avl diverged on {:?}", op);
            prop_assert_eq!(rb.to_vec(), expect.clone(), "red-black diverged on {:?}", op);
            prop_assert_eq!(tr.to_vec(), expect.clone(), "treap diverged on {:?}", op);
            prop_assert_eq!(avl.aug_val(), wb.aug_val());
            prop_assert_eq!(rb.aug_val(), wb.aug_val());
            prop_assert_eq!(tr.aug_val(), wb.aug_val());
        }
        wb.check_invariants().unwrap();
        avl.check_invariants().unwrap();
        rb.check_invariants().unwrap();
        tr.check_invariants().unwrap();
    }

    #[test]
    fn aug_queries_agree_across_schemes(
        init in proptest::collection::vec((0u32..500, 0u64..1000), 1..150),
        probes in proptest::collection::vec((0u32..520, 0u32..520), 1..15),
    ) {
        let wb: AugMap<Spec, WeightBalanced> = AugMap::build(init.clone());
        let avl: AugMap<Spec, Avl> = AugMap::build(init.clone());
        let rb: AugMap<Spec, RedBlack> = AugMap::build(init.clone());
        let tr: AugMap<Spec, Treap> = AugMap::build(init);
        for (a, b) in probes {
            let (lo, hi) = (a.min(b), a.max(b));
            let expect = wb.aug_range(&lo, &hi);
            prop_assert_eq!(avl.aug_range(&lo, &hi), expect);
            prop_assert_eq!(rb.aug_range(&lo, &hi), expect);
            prop_assert_eq!(tr.aug_range(&lo, &hi), expect);
            prop_assert_eq!(avl.rank(&a), wb.rank(&a));
            prop_assert_eq!(rb.rank(&a), wb.rank(&a));
            prop_assert_eq!(tr.rank(&a), wb.rank(&a));
        }
    }
}

#[test]
fn iterator_is_exact_size_and_sorted() {
    let m: AugMap<Spec, WeightBalanced> =
        AugMap::build((0..1000u32).map(|i| ((i * 7) % 1001, i as u64)).collect());
    let it = m.iter();
    assert_eq!(it.len(), m.len());
    let keys: Vec<u32> = m.iter().map(|(&k, _)| k).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    // size_hint stays consistent while consuming
    let mut it = m.iter();
    for consumed in 0..m.len() {
        assert_eq!(
            it.size_hint(),
            (m.len() - consumed, Some(m.len() - consumed))
        );
        it.next();
    }
    assert_eq!(it.next(), None);
}
