//! Persistence and node-sharing tests: the behaviour Table 4 of the paper
//! quantifies.

use pam::stats::{node_size, shared_with, unique_nodes};
use pam::{AugMap, NoAug, SumAug, WeightBalanced};

type M = AugMap<SumAug<u64, u64>, WeightBalanced>;

#[test]
fn snapshots_survive_heavy_mutation() {
    let mut m = M::build((0..10_000u64).map(|i| (i, i)).collect());
    let snap = m.clone();
    let snap_vec = snap.to_vec();
    for i in 0..5_000u64 {
        m.remove(&(i * 2));
        m.insert(1_000_000 + i, 1);
    }
    assert_eq!(snap.to_vec(), snap_vec);
    snap.check_invariants().unwrap();
    m.check_invariants().unwrap();
}

#[test]
fn union_shares_nodes_with_larger_input() {
    // Table 4's headline: union of 10^8 with 10^5 re-uses ~half the
    // larger tree's nodes. Shape check at 10^5 vs 10^2.
    let big = M::build((0..100_000u64).map(|i| (i * 2, 1)).collect());
    let small = M::build((0..100u64).map(|i| (i * 1001, 1)).collect());
    let before = unique_nodes(&[big.root()]);
    let out = big.clone().union_with(small, |a, b| a + b);
    let (total, shared) = shared_with(out.root(), &[big.root()]);
    // with blocked leaves a node covers up to LEAF_CAP entries, so the
    // node count is far below the entry count
    assert!(
        total <= out.len(),
        "{total} nodes for {} entries",
        out.len()
    );
    // most nodes must be shared: only the ~100 touched blocks and their
    // root paths are copied
    assert!(
        shared * 10 > before * 8,
        "expected >80% sharing, got {shared}/{before}"
    );
}

#[test]
fn equal_size_union_shares_little() {
    // When the inputs interleave fully, nearly every node is rebuilt.
    let a = M::build((0..20_000u64).map(|i| (i * 2, 1)).collect());
    let b = M::build((0..20_000u64).map(|i| (i * 2 + 1, 1)).collect());
    let (total, shared) = shared_with(
        a.clone().union_with(b.clone(), |x, y| x + y).root(),
        &[a.root(), b.root()],
    );
    // interleaving forces most of the output to be fresh
    assert!(
        shared * 2 < total,
        "expected <50% sharing, got {shared}/{total}"
    );
}

#[test]
fn range_extraction_shares_with_source() {
    let m = M::build((0..50_000u64).map(|i| (i, i)).collect());
    let r = m.range(&10_000, &40_000);
    let (total, shared) = shared_with(r.root(), &[m.root()]);
    assert!(total <= r.len(), "{total} nodes for {} entries", r.len());
    // a contiguous range reuses all interior subtrees except the two
    // boundary spines
    assert!(shared * 10 > total * 9, "got {shared}/{total}");
}

#[test]
fn augmentation_space_overhead_matches_paper_shape() {
    // Paper: 48B vs 40B per node (+20%) for u64 keys/values.
    let with_aug = node_size::<SumAug<u64, u64>, WeightBalanced>();
    let without = node_size::<NoAug<u64, u64>, WeightBalanced>();
    assert_eq!(with_aug - without, 8, "aug adds exactly one u64");
    assert!(
        with_aug <= 64,
        "node should stay within a cache line: {with_aug}"
    );
}

#[test]
fn ptr_eq_detects_sharing() {
    let m = M::build((0..100u64).map(|i| (i, i)).collect());
    let snap = m.clone();
    assert!(m.ptr_eq(&snap));
    let changed = {
        let mut c = m.clone();
        c.insert(1000, 1);
        c
    };
    assert!(!m.ptr_eq(&changed));
}

#[test]
fn par_drop_releases_unique_tree() {
    let m = M::build((0..200_000u64).map(|i| (i, i)).collect());
    m.par_drop(); // must not deadlock/crash; Miri-style checks in CI
}

#[cfg(not(feature = "no-reuse"))]
#[test]
fn unique_trees_mutate_without_copying_everything() {
    // With the reuse optimization, inserting into a uniquely-owned tree
    // allocates only the path; the reachable node count stays between
    // n / LEAF_CAP (all entries packed into full blocks) and n.
    let mut m = M::build((0..10_000u64).map(|i| (i, i)).collect());
    for i in 0..1000u64 {
        m.insert(20_000 + i, 1);
    }
    let nodes = unique_nodes(&[m.root()]);
    assert!(nodes <= m.len(), "{nodes} nodes for {} entries", m.len());
    assert!(
        nodes * pam::DEFAULT_LEAF_B.max(1) >= m.len(),
        "{nodes} nodes cannot cover {} entries",
        m.len()
    );
}
