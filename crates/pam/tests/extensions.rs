//! Tests for the extension operations beyond the paper's core interface:
//! rank splitting, value updates, filter-map, the footnote-3 filter
//! optimization, and generic best-first top-k.

use pam::{AugMap, MaxAug, MinAug, SumAug};
use std::collections::BTreeMap;

type Sum = AugMap<SumAug<u64, u64>>;

fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn sample(n: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (hash64(i) % (n * 3), i % 1000)).collect()
}

#[test]
fn split_rank_partitions_by_index() {
    let m = Sum::build(sample(5000));
    let all = m.to_vec();
    for i in [
        0usize,
        1,
        7,
        all.len() / 2,
        all.len() - 1,
        all.len(),
        all.len() + 5,
    ] {
        let (lo, hi) = m.split_rank(i);
        lo.check_invariants().unwrap();
        hi.check_invariants().unwrap();
        let cut = i.min(all.len());
        assert_eq!(lo.to_vec(), &all[..cut]);
        assert_eq!(hi.to_vec(), &all[cut..]);
    }
}

#[test]
fn split_returns_value_and_strict_halves() {
    let m = Sum::build(vec![(1, 10), (5, 50), (9, 90)]);
    let (lo, v, hi) = m.split(&5);
    assert_eq!(v, Some(50));
    assert_eq!(lo.to_vec(), vec![(1, 10)]);
    assert_eq!(hi.to_vec(), vec![(9, 90)]);
    let (lo, v, hi) = m.split(&6);
    assert_eq!(v, None);
    assert_eq!(lo.len(), 2);
    assert_eq!(hi.len(), 1);
    // the source is untouched (splits are persistent)
    assert_eq!(m.len(), 3);
}

#[test]
fn update_modifies_or_removes() {
    let mut m = Sum::build(vec![(1, 10), (2, 20), (3, 30)]);
    m.update(&2, |v| Some(v + 5));
    assert_eq!(m.get(&2), Some(&25));
    m.update(&2, |_| None);
    assert_eq!(m.get(&2), None);
    assert_eq!(m.len(), 2);
    m.update(&99, |_| Some(1)); // absent: no-op
    assert_eq!(m.len(), 2);
    m.check_invariants().unwrap();
    assert_eq!(m.aug_val(), 40); // 10 + 30
}

#[test]
fn filter_map_values_transforms_and_drops() {
    let m = Sum::build(sample(3000));
    let out: AugMap<MaxAug<u64, u64>> = m.filter_map_values(|k, &v| (k % 2 == 0).then_some(v * 2));
    out.check_invariants().unwrap();
    let want: Vec<(u64, u64)> = m
        .to_vec()
        .into_iter()
        .filter(|&(k, _)| k % 2 == 0)
        .map(|(k, v)| (k, v * 2))
        .collect();
    assert_eq!(out.to_vec(), want);
}

#[test]
fn aug_filter_with_all_equals_plain_aug_filter() {
    // (min, max) pair augmentation allows both the "none below" prune
    // and the "all below" keep-whole shortcut.
    use pam::AugSpec;
    struct MinMax;
    impl AugSpec for MinMax {
        type K = u64;
        type V = u64;
        type A = (u64, u64); // (min, max) of values
        fn compare(a: &u64, b: &u64) -> std::cmp::Ordering {
            a.cmp(b)
        }
        fn identity() -> (u64, u64) {
            (u64::MAX, u64::MIN)
        }
        fn base(_: &u64, v: &u64) -> (u64, u64) {
            (*v, *v)
        }
        fn combine(a: &(u64, u64), b: &(u64, u64)) -> (u64, u64) {
            (a.0.min(b.0), a.1.max(b.1))
        }
    }
    let pairs = sample(4000);
    let m: AugMap<MinMax> = AugMap::build(pairs);
    let theta = 600u64;
    let fast = m.aug_filter_with_all(|&(_, max)| max > theta, |&(min, _)| min > theta);
    let slow = m.clone().filter(|_, &v| v > theta);
    assert_eq!(fast.to_vec(), slow.to_vec());
    fast.check_invariants().unwrap();

    // whole-map shortcut: everything matches => same root shared
    let all = m.aug_filter_with_all(|_| true, |_| true);
    assert!(all.ptr_eq(&m));
    // nothing matches => empty
    let none = m.aug_filter_with_all(|_| false, |_| false);
    assert!(none.is_empty());
}

#[test]
fn top_k_by_on_min_augmentation() {
    // bottom-k via MinAug with reversed ordering
    let pairs = sample(2000);
    let m: AugMap<MinAug<u64, u64>> = AugMap::build(pairs);
    let got = m.top_k_by(10, |&a| std::cmp::Reverse(a), |_, &v| std::cmp::Reverse(v));
    let mut vals: Vec<u64> = m.values();
    vals.sort_unstable();
    let got_vals: Vec<u64> = got.iter().map(|&(_, &v)| v).collect();
    assert_eq!(got_vals, vals[..10].to_vec());
}

#[test]
fn extensions_compose_with_model() {
    // split_rank + union roundtrip, update sequences vs oracle
    let mut m = Sum::build(sample(2000));
    let mut oracle: BTreeMap<u64, u64> = m.to_vec().into_iter().collect();
    for i in 0..500u64 {
        let k = hash64(i * 7) % 6000;
        match i % 3 {
            0 => {
                m.update(&k, |v| Some(v + 1));
                oracle.entry(k).and_modify(|v| *v += 1);
            }
            1 => {
                m.update(&k, |_| None);
                oracle.remove(&k);
            }
            _ => {
                let (lo, hi) = m.split_rank(m.len() / 2);
                m = lo.union_with(hi, |_, _| unreachable!("disjoint"));
            }
        }
    }
    m.check_invariants().unwrap();
    assert_eq!(
        m.to_vec(),
        oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
    );
}
