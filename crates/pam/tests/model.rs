//! Model-based tests: every operation checked against `BTreeMap` (the
//! oracle), instantiated for all four balancing schemes. After every
//! operation the full invariant set (order, size, augmentation, balance)
//! is re-verified.

use pam::{AugMap, Avl, Balance, RedBlack, SumAug, Treap, WeightBalanced};
use std::collections::BTreeMap;

type Spec = SumAug<u64, u64>;

fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn pairs(n: u64, seed: u64, key_range: u64) -> Vec<(u64, u64)> {
    (0..n)
        .map(|i| (hash64(i + seed) % key_range, hash64(i * 31 + seed) % 1000))
        .collect()
}

fn oracle_of(pairs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
    pairs.iter().copied().collect() // last value wins
}

fn check<B: Balance>(m: &AugMap<Spec, B>, oracle: &BTreeMap<u64, u64>) {
    m.check_invariants().expect("invariants");
    assert_eq!(m.len(), oracle.len());
    let got: Vec<(u64, u64)> = m.to_vec();
    let want: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got, want);
    let sum: u64 = oracle.values().fold(0u64, |a, &b| a.wrapping_add(b));
    assert_eq!(m.aug_val(), sum);
}

fn run_all<B: Balance>() {
    build_matches_model::<B>();
    insert_delete_match_model::<B>();
    union_intersect_difference_match_model::<B>();
    ranges_match_model::<B>();
    multi_ops_match_model::<B>();
    order_statistics_match_model::<B>();
    filter_and_mapreduce_match_model::<B>();
    aug_queries_match_model::<B>();
}

fn build_matches_model<B: Balance>() {
    for n in [0u64, 1, 2, 7, 100, 2000, 20_000] {
        let ps = pairs(n, 42, (n * 2).max(1));
        let m: AugMap<Spec, B> = AugMap::build(ps.clone());
        check(&m, &oracle_of(&ps));
    }
}

fn insert_delete_match_model<B: Balance>() {
    let mut m: AugMap<Spec, B> = AugMap::new();
    let mut oracle = BTreeMap::new();
    for i in 0..3000u64 {
        let k = hash64(i) % 500;
        let v = hash64(i + 7);
        if i % 3 == 2 {
            m.remove(&k);
            oracle.remove(&k);
        } else {
            m.insert(k, v);
            oracle.insert(k, v);
        }
        if i % 500 == 0 {
            check(&m, &oracle);
        }
    }
    check(&m, &oracle);
    // insert_with combines old and new
    let mut m2: AugMap<Spec, B> = AugMap::new();
    m2.insert_with(5, 10, |a, b| a + b);
    m2.insert_with(5, 32, |a, b| a + b);
    assert_eq!(m2.get(&5), Some(&42));
    m2.check_invariants().unwrap();
}

fn union_intersect_difference_match_model<B: Balance>() {
    for (n1, n2) in [
        (1000u64, 1000u64),
        (5000, 50),
        (50, 5000),
        (0, 100),
        (100, 0),
    ] {
        let p1 = pairs(n1, 1, 3000);
        let p2 = pairs(n2, 2, 3000);
        let m1: AugMap<Spec, B> = AugMap::build(p1.clone());
        let m2: AugMap<Spec, B> = AugMap::build(p2.clone());
        let (o1, o2) = (oracle_of(&p1), oracle_of(&p2));

        // union with value combine v1 + v2
        let u = m1.clone().union_with(m2.clone(), |a, b| a + b);
        let mut ou = o1.clone();
        for (&k, &v) in &o2 {
            ou.entry(k).and_modify(|x| *x += v).or_insert(v);
        }
        check(&u, &ou);

        // intersection, keeping v1 * v2 % 1000 to exercise the combine
        let i = m1.clone().intersect_with(m2.clone(), |a, b| (a * b) % 1000);
        let oi: BTreeMap<u64, u64> = o1
            .iter()
            .filter_map(|(&k, &v1)| o2.get(&k).map(|&v2| (k, (v1 * v2) % 1000)))
            .collect();
        check(&i, &oi);

        // difference
        let d = m1.clone().difference(m2.clone());
        let od: BTreeMap<u64, u64> = o1
            .iter()
            .filter(|(k, _)| !o2.contains_key(k))
            .map(|(&k, &v)| (k, v))
            .collect();
        check(&d, &od);
    }
}

fn ranges_match_model<B: Balance>() {
    let ps = pairs(5000, 9, 10_000);
    let m: AugMap<Spec, B> = AugMap::build(ps.clone());
    let o = oracle_of(&ps);
    for (lo, hi) in [
        (0u64, 10_000u64),
        (500, 600),
        (9_999, 10_000),
        (600, 500),
        (3, 3),
    ] {
        let r = m.range(&lo, &hi);
        let or: BTreeMap<u64, u64> = if lo <= hi {
            o.range(lo..=hi).map(|(&k, &v)| (k, v)).collect()
        } else {
            BTreeMap::new()
        };
        check(&r, &or);
    }
    let up = m.up_to(&5000);
    let oup: BTreeMap<u64, u64> = o.range(..=5000).map(|(&k, &v)| (k, v)).collect();
    check(&up, &oup);
    let down = m.down_to(&5000);
    let odn: BTreeMap<u64, u64> = o.range(5000..).map(|(&k, &v)| (k, v)).collect();
    check(&down, &odn);
}

fn multi_ops_match_model<B: Balance>() {
    let base = pairs(4000, 3, 6000);
    let batch = pairs(1500, 4, 6000);
    let mut m: AugMap<Spec, B> = AugMap::build(base.clone());
    let mut o = oracle_of(&base);

    // multi_insert with combine(old, new) = old + new; batch-internal
    // duplicates merge left-to-right first.
    let mut merged_batch: BTreeMap<u64, u64> = BTreeMap::new();
    for &(k, v) in &batch {
        merged_batch.entry(k).and_modify(|x| *x += v).or_insert(v);
    }
    m.multi_insert_with(batch.clone(), |a, b| a + b);
    for (&k, &v) in &merged_batch {
        o.entry(k).and_modify(|x| *x += v).or_insert(v);
    }
    check(&m, &o);

    // multi_delete (half the batch keys, plus some misses)
    let keys: Vec<u64> = batch
        .iter()
        .map(|&(k, _)| k)
        .chain(7_000_000..7_000_100)
        .collect();
    m.multi_delete(keys.clone());
    for k in keys {
        o.remove(&k);
    }
    check(&m, &o);
}

fn order_statistics_match_model<B: Balance>() {
    let ps = pairs(2000, 5, 4000);
    let m: AugMap<Spec, B> = AugMap::build(ps.clone());
    let o = oracle_of(&ps);
    let sorted: Vec<(u64, u64)> = o.iter().map(|(&k, &v)| (k, v)).collect();

    assert_eq!(m.first().map(|(k, v)| (*k, *v)), sorted.first().copied());
    assert_eq!(m.last().map(|(k, v)| (*k, *v)), sorted.last().copied());
    for probe in [0u64, 1, 57, 1999, 3999, 4001] {
        assert_eq!(
            m.rank(&probe),
            sorted.iter().filter(|&&(k, _)| k < probe).count()
        );
        assert_eq!(
            m.previous(&probe).map(|(k, _)| *k),
            sorted
                .iter()
                .rev()
                .find(|&&(k, _)| k < probe)
                .map(|&(k, _)| k)
        );
        assert_eq!(
            m.next(&probe).map(|(k, _)| *k),
            sorted.iter().find(|&&(k, _)| k > probe).map(|&(k, _)| k)
        );
        assert_eq!(m.get(&probe).copied(), o.get(&probe).copied());
    }
    for i in [0usize, 1, 500, sorted.len() - 1] {
        assert_eq!(m.select(i).map(|(k, v)| (*k, *v)), Some(sorted[i]));
    }
    assert_eq!(m.select(sorted.len()), None);
}

fn filter_and_mapreduce_match_model<B: Balance>() {
    let ps = pairs(4000, 6, 9000);
    let m: AugMap<Spec, B> = AugMap::build(ps.clone());
    let o = oracle_of(&ps);

    let f = m.clone().filter(|k, v| k % 3 == 0 && v % 2 == 0);
    let of: BTreeMap<u64, u64> = o
        .iter()
        .filter(|(&k, &v)| k % 3 == 0 && v % 2 == 0)
        .map(|(&k, &v)| (k, v))
        .collect();
    check(&f, &of);

    let mr = m.map_reduce(|k, v| k + v, |a, b| a + b, 0u64);
    let want: u64 = o.iter().map(|(&k, &v)| k + v).sum();
    assert_eq!(mr, want);

    // map_values into a Max-augmented map
    let mv: AugMap<pam::MaxAug<u64, u64>, B> = m.map_values(|_k, v| v * 2);
    mv.check_invariants().unwrap();
    assert_eq!(mv.len(), m.len());
    assert_eq!(mv.aug_val(), o.values().map(|v| v * 2).max().unwrap());
}

fn aug_queries_match_model<B: Balance>() {
    let ps = pairs(3000, 8, 5000);
    let m: AugMap<Spec, B> = AugMap::build(ps.clone());
    let o = oracle_of(&ps);
    for probe in [0u64, 100, 2500, 4999, 6000] {
        let left: u64 = o.range(..=probe).map(|(_, &v)| v).sum();
        assert_eq!(m.aug_left(&probe), left, "aug_left({probe})");
        let right: u64 = o.range(probe..).map(|(_, &v)| v).sum();
        assert_eq!(m.aug_right(&probe), right, "aug_right({probe})");
    }
    for (lo, hi) in [(0u64, 5000u64), (100, 200), (2500, 2500), (4000, 100)] {
        let want: u64 = if lo <= hi {
            o.range(lo..=hi).map(|(_, &v)| v).sum()
        } else {
            0
        };
        assert_eq!(m.aug_range(&lo, &hi), want, "aug_range({lo},{hi})");
        // aug_project with the identity projection must agree
        let proj = m.aug_project(&lo, &hi, |a| *a, |x, y| x + y, 0u64);
        assert_eq!(proj, want, "aug_project({lo},{hi})");
    }
    // aug_filter: keep entries with value above a threshold, using MaxAug
    let mm: AugMap<pam::MaxAug<u64, u64>, B> = AugMap::build(ps.clone());
    let theta = 800u64;
    let kept = mm.aug_filter(|&a| a > theta);
    kept.check_invariants().unwrap();
    let want: Vec<(u64, u64)> = o
        .iter()
        .filter(|(_, &v)| v > theta)
        .map(|(&k, &v)| (k, v))
        .collect();
    assert_eq!(kept.to_vec(), want);
}

#[test]
fn weight_balanced_all() {
    run_all::<WeightBalanced>();
}

#[test]
fn avl_all() {
    run_all::<Avl>();
}

#[test]
fn red_black_all() {
    run_all::<RedBlack>();
}

#[test]
fn treap_all() {
    run_all::<Treap>();
}
