//! Property-based tests over random operation sequences, for all four
//! balancing schemes.

use pam::{AugMap, Avl, Balance, RedBlack, SumAug, Treap, WeightBalanced};
use proptest::prelude::*;
use std::collections::BTreeMap;

type Spec = SumAug<u32, u64>;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Remove(u32),
    MultiInsert(Vec<(u32, u64)>),
    MultiDelete(Vec<u32>),
    UnionWith(Vec<(u32, u64)>),
    IntersectWith(Vec<(u32, u64)>),
    DifferenceWith(Vec<(u32, u64)>),
    Filter(u32),
    Range(u32, u32),
    UpTo(u32),
    DownTo(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = 0u32..300;
    let val = 0u64..1000;
    let pairs = proptest::collection::vec((0u32..300, 0u64..1000), 0..40);
    let keyvec = proptest::collection::vec(0u32..300, 0..40);
    prop_oneof![
        (key.clone(), val.clone()).prop_map(|(k, v)| Op::Insert(k, v)),
        key.clone().prop_map(Op::Remove),
        pairs.clone().prop_map(Op::MultiInsert),
        keyvec.prop_map(Op::MultiDelete),
        pairs.clone().prop_map(Op::UnionWith),
        pairs.clone().prop_map(Op::IntersectWith),
        pairs.prop_map(Op::DifferenceWith),
        (1u32..7).prop_map(Op::Filter),
        (key.clone(), key.clone()).prop_map(|(a, b)| Op::Range(a, b)),
        key.clone().prop_map(Op::UpTo),
        key.prop_map(Op::DownTo),
    ]
}

fn apply_model(model: &mut BTreeMap<u32, u64>, op: &Op) {
    match op {
        Op::Insert(k, v) => {
            model.insert(*k, *v);
        }
        Op::Remove(k) => {
            model.remove(k);
        }
        Op::MultiInsert(ps) => {
            for (k, v) in ps {
                model.insert(*k, *v);
            }
        }
        Op::MultiDelete(ks) => {
            for k in ks {
                model.remove(k);
            }
        }
        Op::UnionWith(ps) => {
            let other: BTreeMap<u32, u64> = ps.iter().copied().collect();
            for (k, v) in other {
                model
                    .entry(k)
                    .and_modify(|x| *x = x.wrapping_add(v))
                    .or_insert(v);
            }
        }
        Op::IntersectWith(ps) => {
            let other: BTreeMap<u32, u64> = ps.iter().copied().collect();
            *model = model
                .iter()
                .filter_map(|(k, v)| other.get(k).map(|w| (*k, v.wrapping_add(*w))))
                .collect();
        }
        Op::DifferenceWith(ps) => {
            let other: BTreeMap<u32, u64> = ps.iter().copied().collect();
            model.retain(|k, _| !other.contains_key(k));
        }
        Op::Filter(d) => {
            model.retain(|k, _| k % d == 0);
        }
        Op::Range(a, b) => {
            let (lo, hi) = (*a.min(b), *a.max(b));
            *model = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        }
        Op::UpTo(k) => {
            *model = model.range(..=*k).map(|(&k, &v)| (k, v)).collect();
        }
        Op::DownTo(k) => {
            *model = model.range(*k..).map(|(&k, &v)| (k, v)).collect();
        }
    }
}

fn apply_map<B: Balance>(m: AugMap<Spec, B>, op: &Op) -> AugMap<Spec, B> {
    let mut m = m;
    match op {
        Op::Insert(k, v) => {
            m.insert(*k, *v);
            m
        }
        Op::Remove(k) => {
            m.remove(k);
            m
        }
        Op::MultiInsert(ps) => {
            m.multi_insert(ps.clone());
            m
        }
        Op::MultiDelete(ks) => {
            m.multi_delete(ks.clone());
            m
        }
        Op::UnionWith(ps) => {
            // build (last value wins) then union with wrapping-add combine
            let other: AugMap<Spec, B> = AugMap::build(ps.clone());
            m.union_with(other, |a, b| a.wrapping_add(*b))
        }
        Op::IntersectWith(ps) => {
            let other: AugMap<Spec, B> = AugMap::build(ps.clone());
            m.intersect_with(other, |a, b| a.wrapping_add(*b))
        }
        Op::DifferenceWith(ps) => {
            let other: AugMap<Spec, B> = AugMap::build(ps.clone());
            m.difference(other)
        }
        Op::Filter(d) => {
            let d = *d;
            m.filter(move |k, _| k % d == 0)
        }
        Op::Range(a, b) => m.range(a.min(b), a.max(b)),
        Op::UpTo(k) => m.up_to(k),
        Op::DownTo(k) => m.down_to(k),
    }
}

fn run_sequence<B: Balance>(init: Vec<(u32, u64)>, ops: Vec<Op>) {
    let mut model: BTreeMap<u32, u64> = init.iter().copied().collect();
    let mut map: AugMap<Spec, B> = AugMap::build(init);
    // keep every intermediate version: persistence must keep them intact
    type Version<B> = (AugMap<Spec, B>, Vec<(u32, u64)>);
    let mut versions: Vec<Version<B>> = Vec::new();
    for op in &ops {
        versions.push((map.clone(), model.iter().map(|(&k, &v)| (k, v)).collect()));
        map = apply_map(map, op);
        apply_model(&mut model, op);
        map.check_invariants().expect("invariants after op");
        let got = map.to_vec();
        let want: Vec<(u32, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "mismatch after {op:?}");
    }
    // all old versions unchanged (full persistence)
    for (v, expect) in versions {
        assert_eq!(v.to_vec(), expect, "old version mutated");
        v.check_invariants().expect("old version invariants");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_ops_weight_balanced(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 0..120),
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        run_sequence::<WeightBalanced>(init, ops);
    }

    #[test]
    fn random_ops_avl(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 0..120),
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        run_sequence::<Avl>(init, ops);
    }

    #[test]
    fn random_ops_red_black(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 0..120),
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        run_sequence::<RedBlack>(init, ops);
    }

    #[test]
    fn random_ops_treap(
        init in proptest::collection::vec((0u32..300, 0u64..1000), 0..120),
        ops in proptest::collection::vec(op_strategy(), 1..25),
    ) {
        run_sequence::<Treap>(init, ops);
    }

    #[test]
    fn aug_queries_match_bruteforce(
        init in proptest::collection::vec((0u32..500, 0u64..1000), 0..200),
        probes in proptest::collection::vec((0u32..520, 0u32..520), 1..20),
    ) {
        let model: BTreeMap<u32, u64> = init.iter().copied().collect();
        let map: AugMap<Spec, WeightBalanced> = AugMap::build(init);
        for (a, b) in probes {
            let (lo, hi) = (a.min(b), a.max(b));
            let want: u64 = model.range(lo..=hi).fold(0u64, |s, (_, &v)| s.wrapping_add(v));
            prop_assert_eq!(map.aug_range(&lo, &hi), want);
            let want_left: u64 = model.range(..=a).fold(0u64, |s, (_, &v)| s.wrapping_add(v));
            prop_assert_eq!(map.aug_left(&a), want_left);
            let want_right: u64 = model.range(a..).fold(0u64, |s, (_, &v)| s.wrapping_add(v));
            prop_assert_eq!(map.aug_right(&a), want_right);
        }
    }

    #[test]
    fn union_is_symmetric_on_keys(
        p1 in proptest::collection::vec((0u32..200, 0u64..100), 0..100),
        p2 in proptest::collection::vec((0u32..200, 0u64..100), 0..100),
    ) {
        let m1: AugMap<Spec, WeightBalanced> = AugMap::build(p1);
        let m2: AugMap<Spec, WeightBalanced> = AugMap::build(p2);
        // with a commutative combine, union is fully symmetric
        let u12 = m1.clone().union_with(m2.clone(), |a, b| a.wrapping_add(*b));
        let u21 = m2.union_with(m1, |a, b| a.wrapping_add(*b));
        prop_assert_eq!(u12.to_vec(), u21.to_vec());
    }

    #[test]
    fn split_union_roundtrip(
        init in proptest::collection::vec((0u32..200, 0u64..100), 1..150),
        pivot in 0u32..220,
    ) {
        let m: AugMap<Spec, WeightBalanced> = AugMap::build(init);
        let lo = m.up_to(&pivot);
        let hi = m.down_to(&(pivot + 1));
        let back = lo.union_with(hi, |_, _| unreachable!("disjoint"));
        prop_assert_eq!(back.to_vec(), m.to_vec());
        back.check_invariants().unwrap();
    }
}
